"""Section 1: the multi-program workload-space explosion.

The paper motivates MPPM with the number of possible multi-program
workloads: for 29 SPEC CPU2006 benchmarks there are 435 two-program
mixes, 35,960 four-program mixes and more than 30.2 million
eight-program mixes, so exhaustive detailed simulation is infeasible.
This experiment recomputes those counts and — when asked — measures
what exhausting the space would cost with the detailed reference
simulator versus with MPPM on this machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup
from repro.simulators import MultiCoreSimulator
from repro.workloads import count_mixes


def _humanize_seconds(seconds: float) -> str:
    """A coarse human-readable duration ("3.4 hours", "2.1e+03 years")."""
    for unit, width in (("seconds", 60.0), ("minutes", 60.0), ("hours", 24.0), ("days", 365.0)):
        if seconds < width:
            return f"{seconds:.3g} {unit}"
        seconds /= width
    return f"{seconds:.3g} years"


@dataclass(frozen=True)
class WorkloadSpaceReport:
    """Counts of possible multi-program workloads per core count."""

    num_benchmarks: int
    rows: List[Mapping[str, object]]
    workload: str = "suite:spec29"

    def to_rows(self) -> List[Mapping[str, object]]:
        return list(self.rows)

    def render(self) -> str:
        columns = list(self.rows[0]) if self.rows else None
        return format_table(
            self.rows,
            columns=columns,
            title=(
                f"Multi-program workload space for {self.workload} "
                f"({self.num_benchmarks} benchmarks, combinations with repetition):"
            ),
            float_format="{:.0f}",
        )


#: The counts quoted in the paper's introduction for 29 benchmarks.
PAPER_COUNTS = {2: "435", 4: "35,960", 8: "more than 30.2 million"}


def workload_space_report(
    setup: ExperimentSetup,
    core_counts: Sequence[int] = (2, 4, 8, 16),
    measure_costs: bool = False,
    llc_config: int = 1,
    seed: int = 7,
) -> WorkloadSpaceReport:
    """Count all possible mixes of the setup's suite for each core count.

    With ``measure_costs`` the report also times one reference
    simulation and one MPPM prediction per core count and extrapolates
    what evaluating the *entire* space would cost each way — the
    per-mix costs behind the paper's "exhaustive simulation is
    infeasible" argument.  The timed calls go straight to the
    simulator and the model (bypassing the setup's memo caches and the
    engine's result cache), so the estimates reflect real computation
    even in a warm-cache campaign.
    """
    num_benchmarks = len(setup.suite)
    rows = []
    for cores in core_counts:
        row = {
            "cores": cores,
            "possible_mixes": count_mixes(num_benchmarks, cores),
            "paper_reports": PAPER_COUNTS.get(cores, "-"),
        }
        if measure_costs:
            machine = setup.machine(num_cores=cores, llc_config=llc_config)
            mix = setup.mixes(cores, 1, seed=seed + cores)[0]
            # Warm the single-core profiles untimed: they are the
            # paper's one-time cost, not part of the per-mix cost.
            profiles = {
                name: setup.store.get_profile(setup.suite[name], machine)
                for name in sorted(set(mix.programs))
            }
            traces = setup.llc_traces(mix, machine)
            start = time.perf_counter()
            MultiCoreSimulator(machine).run(traces)
            simulate_seconds = time.perf_counter() - start
            model = setup.mppm(machine)
            start = time.perf_counter()
            model.predict_mix(mix, profiles)
            predict_seconds = time.perf_counter() - start
            count = row["possible_mixes"]
            row["exhaustive_simulation"] = _humanize_seconds(simulate_seconds * count)
            row["exhaustive_mppm"] = _humanize_seconds(predict_seconds * count)
        rows.append(row)
    return WorkloadSpaceReport(
        num_benchmarks=num_benchmarks, rows=rows, workload=setup.workload_spec
    )
