"""Figure 7: can a handful of random mixes rank the LLC design space?

The paper compares six LLC configurations (Table 2) on a quad-core
machine.  The reference ranking comes from detailed simulation of a
large set of mixes (150 in the paper).  "Current practice" is emulated
by 20 trials, each detailed-simulating only 12 random mixes — either
fully random (Figure 7a) or 4 MEM + 4 COMP + 4 MIX category mixes
(Figure 7b) — and the Spearman rank correlation of each trial's ranking
against the reference is reported.  MPPM's ranking, computed over a
large number of mixes (5,000 in the paper), is the right-most bar.

The paper's finding: individual current-practice trials can have rank
correlations of 0.5 and below, while MPPM achieves 1.0 (STP) and 0.93
(ANTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup
from repro.metrics import spearman_rank_correlation
from repro.predictors import canonical_spec, lookup_spec
from repro.workloads import BenchmarkClass, WorkloadMix


@dataclass(frozen=True)
class DesignSpaceScores:
    """Average STP and ANTT of every design point, for one evaluation method."""

    label: str
    config_numbers: List[int]
    stp: List[float]
    antt: List[float]

    def stp_rank_correlation(self, reference: "DesignSpaceScores") -> float:
        return spearman_rank_correlation(self.stp, reference.stp)

    def antt_rank_correlation(self, reference: "DesignSpaceScores") -> float:
        # ANTT is lower-is-better; rank correlation is sign-invariant to
        # that as long as both series use the same orientation.
        return spearman_rank_correlation(self.antt, reference.antt)

    def best_config_by_stp(self) -> int:
        return self.config_numbers[int(np.argmax(self.stp))]

    def best_config_by_antt(self) -> int:
        return self.config_numbers[int(np.argmin(self.antt))]


@dataclass(frozen=True)
class RankingResult:
    """Everything Figure 7 plots, for one selection policy.

    ``models`` holds one :class:`DesignSpaceScores` per requested
    predictor spec (labelled by it); the paper's single-model figure is
    the special case ``predictors=("mppm:foa",)``, exposed through the
    ``mppm`` convenience accessors.
    """

    policy: str
    reference: DesignSpaceScores
    models: List[DesignSpaceScores]
    trials: List[DesignSpaceScores]

    @property
    def mppm(self) -> DesignSpaceScores:
        """The first (primary) model's scores — MPPM in the paper's setup."""
        return self.models[0]

    def model(self, spec: str) -> DesignSpaceScores:
        """The scores of one requested predictor, by spec label."""
        label = lookup_spec(spec)
        for scores in self.models:
            if scores.label == label:
                return scores
        raise KeyError(f"no ranking scores for predictor {spec!r}")

    @property
    def trial_stp_correlations(self) -> List[float]:
        return [trial.stp_rank_correlation(self.reference) for trial in self.trials]

    @property
    def trial_antt_correlations(self) -> List[float]:
        return [trial.antt_rank_correlation(self.reference) for trial in self.trials]

    @property
    def average_trial_stp_correlation(self) -> float:
        return float(np.mean(self.trial_stp_correlations))

    @property
    def average_trial_antt_correlation(self) -> float:
        return float(np.mean(self.trial_antt_correlations))

    @property
    def mppm_stp_correlation(self) -> float:
        return self.mppm.stp_rank_correlation(self.reference)

    @property
    def mppm_antt_correlation(self) -> float:
        return self.mppm.antt_rank_correlation(self.reference)

    def to_rows(self) -> List[Mapping[str, object]]:
        rows = [
            {
                "set": f"trial {i + 1}",
                "STP_rank_corr": stp_corr,
                "ANTT_rank_corr": antt_corr,
            }
            for i, (stp_corr, antt_corr) in enumerate(
                zip(self.trial_stp_correlations, self.trial_antt_correlations)
            )
        ]
        rows.append(
            {
                "set": "avg (current practice)",
                "STP_rank_corr": self.average_trial_stp_correlation,
                "ANTT_rank_corr": self.average_trial_antt_correlation,
            }
        )
        for scores in self.models:
            rows.append(
                {
                    "set": scores.label,
                    "STP_rank_corr": scores.stp_rank_correlation(self.reference),
                    "ANTT_rank_corr": scores.antt_rank_correlation(self.reference),
                }
            )
        return rows

    def render(self) -> str:
        return format_table(
            self.to_rows(),
            title=(
                f"Figure 7 ({self.policy}) — Spearman rank correlation of the six-LLC-config "
                "ranking against the detailed-simulation reference "
                "(paper: individual trials as low as <=0.5; MPPM 1.0 STP / 0.93 ANTT):"
            ),
        )


def _config_numbers(machines: Sequence) -> List[int]:
    return [int(machine.name.split("#")[1].split()[0]) for machine in machines]


def _scores_from_results(
    machines: Sequence, per_machine_results: List[List], label: str
) -> DesignSpaceScores:
    """Average STP/ANTT per design point from per-machine result lists."""
    stp = [
        float(np.mean([result.system_throughput for result in results]))
        for results in per_machine_results
    ]
    antt = [
        float(np.mean([result.average_normalized_turnaround_time for result in results]))
        for results in per_machine_results
    ]
    return DesignSpaceScores(
        label=label, config_numbers=_config_numbers(machines), stp=stp, antt=antt
    )


def _evaluate_mix_sets(
    setup: ExperimentSetup,
    mix_sets: Sequence[Sequence[WorkloadMix]],
    machines: Sequence,
    labels: Sequence[str],
    predictors: Sequence[str],
) -> List[DesignSpaceScores]:
    """Score several (mix set, predictor) sweeps over the design space in ONE job graph.

    ``predictors[k]`` is the registry spec that evaluates
    ``mix_sets[k]`` (``"detailed"`` for reference/trial sweeps,
    ``"mppm:foa"`` et al. for model sweeps) — one unified code path
    for every estimator.  Every (mix, machine) unit of every set
    becomes one engine job, so a parallel setup overlaps the reference
    sweep, the trials and all model sweeps instead of processing them
    one design point at a time.
    """
    items = [
        (spec, mix, machine)
        for mixes, spec in zip(mix_sets, predictors)
        for machine in machines
        for mix in mixes
    ]
    results = setup.predictor_batch(items)

    scores: List[DesignSpaceScores] = []
    offset = 0
    for mixes, label in zip(mix_sets, labels):
        per_machine = []
        for _ in machines:
            per_machine.append(results[offset : offset + len(mixes)])
            offset += len(mixes)
        scores.append(_scores_from_results(machines, per_machine, label))
    return scores


def _scores_from_predictor(
    setup: ExperimentSetup,
    mixes: Sequence[WorkloadMix],
    machines: Sequence,
    label: str,
    predictor: str,
) -> DesignSpaceScores:
    return _evaluate_mix_sets(setup, [mixes], machines, [label], [predictor])[0]


def ranking_experiment(
    setup: ExperimentSetup,
    policy: str = "random",
    num_cores: int = 4,
    num_trials: int = 20,
    mixes_per_trial: int = 12,
    reference_mixes: int = 60,
    mppm_mixes: int = 600,
    predictors: Sequence[str] = ("mppm:foa",),
    seed: int = 41,
) -> RankingResult:
    """Run one panel of Figure 7.

    ``policy`` is ``"random"`` (Figure 7a) or ``"category"``
    (Figure 7b: equal parts MEM / COMP / MIX category mixes per trial).
    ``predictors`` is the list of registry specs ranked over the large
    (``mppm_mixes``) sample — the paper's figure is the default
    ``("mppm:foa",)``, but any estimators can compete (baselines,
    other contention models, even ``detailed``).  The paper's sizes are
    20 trials x 12 mixes, a 150-mix reference and 5,000 MPPM mixes; the
    defaults are smaller but parameterised.
    """
    if policy not in ("random", "category"):
        raise ValueError("policy must be 'random' or 'category'")
    if not predictors:
        raise ValueError("at least one predictor spec is required")
    predictors = [canonical_spec(spec) for spec in predictors]
    machines = setup.design_space(num_cores=num_cores)
    reference_mix_list = setup.mixes(num_cores, reference_mixes, seed=seed)
    reference = _scores_from_predictor(
        setup,
        reference_mix_list,
        machines,
        label="reference (detailed simulation)",
        predictor="detailed",
    )

    model_mix_list = setup.mixes(num_cores, mppm_mixes, seed=seed + 1)
    model_scores = _evaluate_mix_sets(
        setup,
        [model_mix_list] * len(predictors),
        machines,
        list(predictors),
        list(predictors),
    )

    trial_mix_sets: List[Sequence[WorkloadMix]] = []
    for trial in range(num_trials):
        if policy == "random":
            trial_mixes = setup.mixes(
                num_cores, mixes_per_trial, seed=seed + 100 + trial
            )
        else:
            per_category = max(1, mixes_per_trial // len(BenchmarkClass))
            trial_mixes = setup.mixes(
                num_cores,
                per_category,
                seed=seed + 100 + trial,
                category=tuple(BenchmarkClass),
            )
        trial_mix_sets.append(trial_mixes)
    trials = _evaluate_mix_sets(
        setup,
        trial_mix_sets,
        machines,
        [f"trial {trial + 1}" for trial in range(num_trials)],
        ["detailed"] * num_trials,
    )

    return RankingResult(
        policy=policy, reference=reference, models=model_scores, trials=trials
    )
