"""Figures 4 and 5 (+ the §4.2 16-core numbers): MPPM accuracy.

For a set of random workload mixes per core count, the experiment runs
both MPPM and the detailed reference simulator and reports:

* the STP and ANTT scatter points (predicted vs. measured) and the
  average absolute relative error per core count (Figure 4; the paper
  reports 1.4%/1.6%/1.7% STP error and 1.5%/1.9%/2.1% ANTT error for
  2/4/8 cores, and 2.3%/2.9% for the 16-core configuration #4), and
* the per-program slowdown scatter and its average error (Figure 5;
  the paper reports 7% for 2–8 cores and 4.5% for 16 cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.results import MixEvaluation
from repro.experiments.setup import ExperimentSetup
from repro.workloads import WorkloadMix


@dataclass(frozen=True)
class AccuracyForCoreCount:
    """Accuracy results for one (predictor, core count, LLC configuration)."""

    num_cores: int
    llc_config: int
    evaluations: List[MixEvaluation]
    predictor: str = "mppm:foa"

    @property
    def num_mixes(self) -> int:
        return len(self.evaluations)

    @property
    def average_stp_error(self) -> float:
        return float(np.mean([evaluation.stp_error for evaluation in self.evaluations]))

    @property
    def average_antt_error(self) -> float:
        return float(np.mean([evaluation.antt_error for evaluation in self.evaluations]))

    @property
    def average_slowdown_error(self) -> float:
        errors = [error for evaluation in self.evaluations for error in evaluation.slowdown_errors]
        return float(np.mean(errors))

    def stp_scatter(self) -> List[Mapping[str, float]]:
        """Predicted/measured STP pairs (the dots of Figure 4a)."""
        return [
            {"predicted": evaluation.predicted_stp, "measured": evaluation.measured_stp}
            for evaluation in self.evaluations
        ]

    def antt_scatter(self) -> List[Mapping[str, float]]:
        """Predicted/measured ANTT pairs (the dots of Figure 4b)."""
        return [
            {"predicted": evaluation.predicted_antt, "measured": evaluation.measured_antt}
            for evaluation in self.evaluations
        ]

    def slowdown_scatter(self) -> List[Mapping[str, float]]:
        """Predicted/measured per-program slowdown pairs (the dots of Figure 5)."""
        points = []
        for evaluation in self.evaluations:
            for predicted, measured in zip(
                evaluation.predicted_slowdowns, evaluation.measured_slowdowns
            ):
                points.append({"predicted": predicted, "measured": measured})
        return points


@dataclass(frozen=True)
class AccuracyResult:
    """Figure 4 + Figure 5 + the 16-core paragraph, in one object.

    With several predictors requested, ``per_core_count`` holds one
    entry per (predictor, core count) combination, in predictor order.
    """

    per_core_count: List[AccuracyForCoreCount]

    def for_cores(self, num_cores: int, predictor: Optional[str] = None) -> AccuracyForCoreCount:
        for entry in self.per_core_count:
            if entry.num_cores == num_cores and predictor in (None, entry.predictor):
                return entry
        raise KeyError(f"no accuracy results for {num_cores} cores")

    def to_rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "predictor": entry.predictor,
                "cores": entry.num_cores,
                "llc_config": f"#{entry.llc_config}",
                "mixes": entry.num_mixes,
                "STP_error_%": 100.0 * entry.average_stp_error,
                "ANTT_error_%": 100.0 * entry.average_antt_error,
                "slowdown_error_%": 100.0 * entry.average_slowdown_error,
            }
            for entry in self.per_core_count
        ]

    def render(self) -> str:
        return format_table(
            self.to_rows(),
            title=(
                "Figures 4 & 5 — MPPM prediction error versus detailed simulation "
                "(paper: STP 1.4/1.6/1.7/2.3%, ANTT 1.5/1.9/2.1/2.9%, "
                "slowdown ~7% for 2-8 cores, 4.5% for 16):"
            ),
            float_format="{:.2f}",
        )


def accuracy_experiment(
    setup: ExperimentSetup,
    core_counts: Sequence[int] = (2, 4, 8),
    mixes_per_core_count: int = 40,
    llc_config: int = 1,
    include_16_core: bool = False,
    mixes_16_core: int = 10,
    llc_config_16_core: int = 4,
    predictors: Sequence[str] = ("mppm:foa",),
    seed: int = 23,
) -> AccuracyResult:
    """Run the Figure 4/5 experiment.

    The paper uses 150 mixes for 2/4/8 cores (configuration #1) and 25
    mixes for 16 cores (configuration #4); the defaults are smaller so
    the whole benchmark suite stays fast, and are parameters so the
    paper's sizes can be requested.  ``predictors`` lists the registry
    specs evaluated against the reference — the paper's figure is the
    default ``("mppm:foa",)``, and e.g. adding the baselines quantifies
    what the iterative entanglement buys.

    All core counts and predictors are submitted to the engine as one
    job graph (the reference simulation of each mix is shared by every
    predictor), so a parallel setup overlaps the whole sweep.
    """
    if not predictors:
        raise ValueError("at least one predictor spec is required")
    groups: List[Tuple[int, int, List[WorkloadMix]]] = []
    for num_cores in core_counts:
        mixes = setup.mixes(num_cores, mixes_per_core_count, seed=seed + num_cores)
        groups.append((num_cores, llc_config, mixes))
    if include_16_core:
        mixes = setup.mixes(16, mixes_16_core, seed=seed + 16)
        groups.append((16, llc_config_16_core, mixes))

    pairs = [
        (mix, setup.machine(num_cores=num_cores, llc_config=config))
        for num_cores, config, mixes in groups
        for mix in mixes
    ]
    evaluated = setup.evaluate_predictors(pairs, predictors)

    results: List[AccuracyForCoreCount] = []
    for spec, evaluations in evaluated.items():
        offset = 0
        for num_cores, config, mixes in groups:
            results.append(
                AccuracyForCoreCount(
                    num_cores=num_cores,
                    llc_config=config,
                    evaluations=evaluations[offset : offset + len(mixes)],
                    predictor=spec,
                )
            )
            offset += len(mixes)
    return AccuracyResult(per_core_count=results)
