"""Section 4.3: MPPM speed versus detailed simulation.

The paper reports that MPPM evaluates one multi-program workload in a
few tenths of a second, while detailed simulation of an 8-core mix
takes about 12 hours, making MPPM up to five orders of magnitude
faster (62x including the one-time single-core simulations for 150
8-core mixes, more than 53,000x excluding them).

On this reproduction both sides are much faster in absolute terms (the
"detailed" simulator is itself a scaled-down trace-driven model), so
the experiment reports the measured wall-clock times and the measured
speedups, and additionally extrapolates what the speedups would be at
the paper's detailed-simulation speed (300 KIPS for 1B-instruction
traces) so the orders-of-magnitude claim can be checked for shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup
from repro.workloads import WorkloadMix


@dataclass(frozen=True)
class SpeedResult:
    """Measured timings and derived speedups."""

    num_cores: int
    num_mixes: int
    profiling_seconds_per_benchmark: float
    num_benchmarks_profiled: int
    mppm_seconds_per_mix: float
    simulation_seconds_per_mix: float

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def one_time_profiling_seconds(self) -> float:
        return self.profiling_seconds_per_benchmark * self.num_benchmarks_profiled

    @property
    def speedup_excluding_profiling(self) -> float:
        """Detailed-simulation time over MPPM time, per mix."""
        return self.simulation_seconds_per_mix / self.mppm_seconds_per_mix

    @property
    def speedup_including_profiling(self) -> float:
        """Speedup for the whole campaign, amortising the one-time profiling cost."""
        total_mppm = self.one_time_profiling_seconds + self.num_mixes * self.mppm_seconds_per_mix
        total_simulation = self.num_mixes * self.simulation_seconds_per_mix
        return total_simulation / total_mppm

    def to_rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "quantity": "single-core profiling (one-time, per benchmark)",
                "seconds": self.profiling_seconds_per_benchmark,
            },
            {"quantity": "MPPM per mix", "seconds": self.mppm_seconds_per_mix},
            {
                "quantity": f"detailed simulation per {self.num_cores}-core mix",
                "seconds": self.simulation_seconds_per_mix,
            },
            {
                "quantity": f"speedup per mix (profiles already available), x",
                "seconds": self.speedup_excluding_profiling,
            },
            {
                "quantity": (
                    f"campaign speedup for {self.num_mixes} mixes "
                    "(including one-time profiling), x"
                ),
                "seconds": self.speedup_including_profiling,
            },
        ]

    def render(self) -> str:
        return format_table(
            self.to_rows(),
            columns=["quantity", "seconds"],
            title=(
                "Section 4.3 — MPPM versus detailed simulation "
                "(paper: ~53,000x per mix and 62x for a 150-mix campaign on 8 cores):"
            ),
            float_format="{:.4f}",
        )


def speed_experiment(
    setup: ExperimentSetup,
    num_cores: int = 8,
    num_mixes: int = 8,
    campaign_mixes: int = 150,
    seed: int = 31,
) -> SpeedResult:
    """Measure MPPM and detailed-simulation time per mix.

    ``num_mixes`` mixes are timed; ``campaign_mixes`` (the paper's 150)
    is the campaign size used for the including-profiling speedup.
    """
    machine = setup.machine(num_cores=num_cores, llc_config=1)
    mixes = setup.mixes(num_cores, num_mixes, seed=seed)

    # One-time cost: single-core profiling.  The setup may already have
    # cached profiles, so the cost is measured on a fresh profiler for a
    # few benchmarks and averaged.
    from repro.profiling import Profiler

    timing_specs = list(setup.suite)[: min(3, len(setup.suite))]
    fresh_profiler = Profiler(
        machine=machine,
        num_instructions=setup.config.num_instructions,
        interval_instructions=setup.config.interval_instructions,
        seed=setup.config.seed,
    )
    start = time.perf_counter()
    for spec in timing_specs:
        fresh_profiler.profile(spec)
    profiling_per_benchmark = (time.perf_counter() - start) / len(timing_specs)

    profiles = setup.profiles(machine)

    # MPPM time per mix.
    model = setup.mppm(machine)
    start = time.perf_counter()
    for mix in mixes:
        model.predict_mix(mix, profiles)
    mppm_per_mix = (time.perf_counter() - start) / len(mixes)

    # Detailed-simulation time per mix (bypass the setup cache so the
    # timing reflects actual simulation work).
    from repro.simulators import MultiCoreSimulator

    simulator = MultiCoreSimulator(machine)
    start = time.perf_counter()
    for mix in mixes:
        simulator.run(setup.llc_traces(mix, machine))
    simulation_per_mix = (time.perf_counter() - start) / len(mixes)

    return SpeedResult(
        num_cores=num_cores,
        num_mixes=campaign_mixes,
        profiling_seconds_per_benchmark=profiling_per_benchmark,
        num_benchmarks_profiled=len(profiles),
        mppm_seconds_per_mix=mppm_per_mix,
        simulation_seconds_per_mix=simulation_per_mix,
    )
