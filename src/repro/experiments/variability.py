"""Figure 3: variability of STP and ANTT versus the number of workload mixes.

The paper shows that the 95% confidence interval on mean STP/ANTT over
randomly chosen 4-program mixes is wide for a handful of mixes (about
10% for STP and 18% for ANTT at 10 mixes) and only becomes tight
(2.6% / 4.5%) at around 150 mixes — which is why "pick a dozen random
mixes" is a fragile methodology.

The experiment samples ``max_mixes`` random mixes once, evaluates them
(with the detailed reference simulator by default, or with MPPM), and
reports the running mean and confidence interval as the first ``n``
mixes are considered, for ``n`` on a grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup
from repro.metrics import confidence_interval
from repro.predictors import PredictorError, available_predictors, canonical_spec
from repro.workloads import WorkloadMix


@dataclass(frozen=True)
class VariabilityPoint:
    """Confidence interval of mean STP/ANTT using the first ``num_mixes`` mixes."""

    num_mixes: int
    stp_mean: float
    stp_ci_low: float
    stp_ci_high: float
    stp_ci_pct: float
    antt_mean: float
    antt_ci_low: float
    antt_ci_high: float
    antt_ci_pct: float


@dataclass(frozen=True)
class VariabilityResult:
    """The two curves of Figure 3."""

    source: str
    num_cores: int
    llc_config: int
    points: List[VariabilityPoint]

    def to_rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "mixes": point.num_mixes,
                "STP_mean": point.stp_mean,
                "STP_ci_low": point.stp_ci_low,
                "STP_ci_high": point.stp_ci_high,
                "STP_ci_%": point.stp_ci_pct,
                "ANTT_mean": point.antt_mean,
                "ANTT_ci_low": point.antt_ci_low,
                "ANTT_ci_high": point.antt_ci_high,
                "ANTT_ci_%": point.antt_ci_pct,
            }
            for point in self.points
        ]

    def render(self) -> str:
        return format_table(
            self.to_rows(),
            title=(
                f"Figure 3 — variability of STP/ANTT vs number of {self.num_cores}-program "
                f"mixes (config #{self.llc_config}, {self.source}); "
                "ci_% is the 95% CI half-width as % of the mean:"
            ),
        )

    def point_for(self, num_mixes: int) -> VariabilityPoint:
        for point in self.points:
            if point.num_mixes == num_mixes:
                return point
        raise KeyError(f"no variability point for {num_mixes} mixes")


#: Legacy ``source`` names mapped onto registry predictor specs.
_SOURCE_SPECS = {"simulation": "detailed", "mppm": "mppm:foa"}


def variability_experiment(
    setup: ExperimentSetup,
    num_cores: int = 4,
    llc_config: int = 1,
    max_mixes: int = 60,
    grid: Sequence[int] = None,
    source: str = "simulation",
    seed: int = 11,
) -> VariabilityResult:
    """Run the Figure 3 experiment.

    ``source`` selects the estimator that evaluates the mixes: the
    legacy names ``"simulation"`` (detailed reference, as in the
    paper) and ``"mppm"`` (far faster, same curve) still work, and any
    registry predictor spec (``"mppm:sdc"``,
    ``"baseline:one-shot"``, …) is accepted — the two historical code
    paths are now one.
    """
    try:
        spec = canonical_spec(_SOURCE_SPECS.get(source, source))
    except PredictorError:
        raise ValueError(
            "source must be 'simulation', 'mppm' or a predictor spec; "
            + ", ".join(available_predictors())
        ) from None
    machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
    mixes = setup.mixes(num_cores, max_mixes, seed=seed)

    results = setup.predict_many(mixes, machine, predictor=spec)
    stp_values: List[float] = [result.system_throughput for result in results]
    antt_values: List[float] = [
        result.average_normalized_turnaround_time for result in results
    ]

    if grid is None:
        grid = [n for n in (5, 10, 20, 30, 45, 60, 90, 120, 150) if n <= max_mixes]
        if max_mixes not in grid:
            grid = list(grid) + [max_mixes]

    points = []
    for n in grid:
        stp_ci = confidence_interval(stp_values[:n])
        antt_ci = confidence_interval(antt_values[:n])
        points.append(
            VariabilityPoint(
                num_mixes=n,
                stp_mean=stp_ci.mean,
                stp_ci_low=stp_ci.lower,
                stp_ci_high=stp_ci.upper,
                stp_ci_pct=100.0 * stp_ci.halfwidth_pct_of_mean,
                antt_mean=antt_ci.mean,
                antt_ci_low=antt_ci.lower,
                antt_ci_high=antt_ci.upper,
                antt_ci_pct=100.0 * antt_ci.halfwidth_pct_of_mean,
            )
        )
    return VariabilityResult(
        source=source, num_cores=num_cores, llc_config=llc_config, points=points
    )
