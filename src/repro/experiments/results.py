"""Predicted-versus-measured evaluation of workload mixes.

A :class:`MixEvaluation` pairs MPPM's prediction with the detailed
reference simulation of the same mix and exposes the error metrics the
paper reports (STP, ANTT, per-program slowdowns).  It is the common
currency of the accuracy, ranking and stress experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.result import MixPrediction
from repro.metrics import absolute_relative_error
from repro.simulators import MultiCoreRunResult
from repro.workloads import WorkloadMix


@dataclass(frozen=True)
class MixEvaluation:
    """One mix evaluated by both MPPM and the detailed reference simulator."""

    mix: WorkloadMix
    predicted: MixPrediction
    measured: MultiCoreRunResult

    # ------------------------------------------------------------------
    # Metric values
    # ------------------------------------------------------------------

    @property
    def predicted_stp(self) -> float:
        return self.predicted.system_throughput

    @property
    def measured_stp(self) -> float:
        return self.measured.system_throughput

    @property
    def predicted_antt(self) -> float:
        return self.predicted.average_normalized_turnaround_time

    @property
    def measured_antt(self) -> float:
        return self.measured.average_normalized_turnaround_time

    @property
    def predicted_slowdowns(self) -> List[float]:
        return [program.slowdown for program in self.predicted.programs]

    @property
    def measured_slowdowns(self) -> List[float]:
        return [program.slowdown for program in self.measured.programs]

    # ------------------------------------------------------------------
    # Errors
    # ------------------------------------------------------------------

    @property
    def stp_error(self) -> float:
        """Absolute relative STP prediction error."""
        return absolute_relative_error(self.predicted_stp, self.measured_stp)

    @property
    def antt_error(self) -> float:
        """Absolute relative ANTT prediction error."""
        return absolute_relative_error(self.predicted_antt, self.measured_antt)

    @property
    def slowdown_errors(self) -> List[float]:
        """Per-program absolute relative slowdown errors."""
        return [
            absolute_relative_error(predicted, measured)
            for predicted, measured in zip(self.predicted_slowdowns, self.measured_slowdowns)
        ]

    def describe(self) -> str:
        return (
            f"{self.mix.label()}: STP {self.measured_stp:.3f} measured / "
            f"{self.predicted_stp:.3f} predicted ({self.stp_error:.1%} error), "
            f"ANTT {self.measured_antt:.3f} / {self.predicted_antt:.3f} "
            f"({self.antt_error:.1%} error)"
        )


def evaluate_mixes(setup, mixes: Sequence[WorkloadMix], machine) -> List[MixEvaluation]:
    """Evaluate every mix with both MPPM and the reference simulator.

    ``setup`` is an :class:`repro.experiments.setup.ExperimentSetup`;
    the import is kept out of the signature to avoid a circular import.
    The work is submitted through the setup's engine, so it fans out
    over worker processes when the setup was built with ``jobs > 1``.
    """
    return setup.evaluate_many(list(mixes), machine)
