"""Figure 8: pairwise design decisions — does current practice get them right?

For every pairwise comparison of configuration #1 against configuration
#k (k = 2..6), the paper asks: does a current-practice trial (a small
set of category-sampled mixes, evaluated with detailed simulation) pick
the same winner as MPPM (evaluated over a large mix sample)?  And when
they disagree, who agrees with the reference (detailed simulation of a
large mix set)?  The answers are reported as fractions of trials in
four categories:

* agree, both right
* agree, both wrong
* disagree, MPPM right
* disagree, detailed (current practice) right

The paper's headline: for the #1-vs-#6 comparison current practice
disagrees with MPPM in roughly 40% of the trials and is wrong when it
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.ranking import (
    DesignSpaceScores,
    _evaluate_mix_sets,
)
from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup
from repro.predictors import canonical_spec, lookup_spec
from repro.workloads import BenchmarkClass


@dataclass(frozen=True)
class PairwiseAgreement:
    """Agreement fractions for one configuration pair (e.g. #1 vs #4)."""

    baseline_config: int
    challenger_config: int
    num_trials: int
    agree_both_right: float
    agree_both_wrong: float
    disagree_mppm_right: float
    disagree_practice_right: float

    @property
    def disagree_fraction(self) -> float:
        return self.disagree_mppm_right + self.disagree_practice_right

    @property
    def practice_wrong_fraction(self) -> float:
        """Fraction of trials in which current practice picks the wrong winner."""
        return self.agree_both_wrong + self.disagree_mppm_right


@dataclass(frozen=True)
class AgreementResult:
    """Figure 8: one :class:`PairwiseAgreement` per challenger configuration.

    ``pairs`` describes the primary (first requested) predictor;
    ``by_predictor`` maps every requested spec to its own pair list, so
    the experiment generalises from "current practice vs MPPM" to
    "current practice vs any set of estimators".
    """

    metric: str
    pairs: List[PairwiseAgreement]
    by_predictor: Optional[Mapping[str, List[PairwiseAgreement]]] = None

    def pair(self, challenger_config: int) -> PairwiseAgreement:
        for pair in self.pairs:
            if pair.challenger_config == challenger_config:
                return pair
        raise KeyError(f"no agreement entry for config #{challenger_config}")

    def pairs_for(self, predictor: str) -> List[PairwiseAgreement]:
        """The agreement pairs of one requested predictor spec."""
        spec = lookup_spec(predictor)
        if self.by_predictor and spec in self.by_predictor:
            return self.by_predictor[spec]
        raise KeyError(f"no agreement results for predictor {predictor!r}")

    def to_rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "comparison": f"#${pair.baseline_config} vs #{pair.challenger_config}".replace("$", ""),
                "agree_both_right_%": 100.0 * pair.agree_both_right,
                "agree_both_wrong_%": 100.0 * pair.agree_both_wrong,
                "disagree_MPPM_right_%": 100.0 * pair.disagree_mppm_right,
                "disagree_practice_right_%": 100.0 * pair.disagree_practice_right,
            }
            for pair in self.pairs
        ]

    def render(self) -> str:
        return format_table(
            self.to_rows(),
            title=(
                f"Figure 8 — pairwise config decisions ({self.metric}): how often current "
                "practice agrees with MPPM, and who is right vs. the reference:"
            ),
            float_format="{:.1f}",
        )


def _winner(stp_a: float, stp_b: float, antt_a: float, antt_b: float, metric: str) -> int:
    """Which of the two configs wins (0 = first, 1 = second) under the metric."""
    if metric == "stp":
        return 0 if stp_a >= stp_b else 1
    return 0 if antt_a <= antt_b else 1


def _pairwise_agreements(
    reference: DesignSpaceScores,
    model_scores: DesignSpaceScores,
    trial_scores: Sequence[DesignSpaceScores],
    metric: str,
) -> List[PairwiseAgreement]:
    """The Figure 8 fractions for one model against the trials and reference."""
    baseline_index = reference.config_numbers.index(1)
    pairs: List[PairwiseAgreement] = []
    for challenger in (2, 3, 4, 5, 6):
        challenger_index = reference.config_numbers.index(challenger)

        def winner_of(scores: DesignSpaceScores) -> int:
            return _winner(
                scores.stp[baseline_index],
                scores.stp[challenger_index],
                scores.antt[baseline_index],
                scores.antt[challenger_index],
                metric,
            )

        reference_winner = winner_of(reference)
        model_winner = winner_of(model_scores)

        agree_right = agree_wrong = disagree_model = disagree_practice = 0
        for scores in trial_scores:
            practice_winner = winner_of(scores)
            practice_correct = practice_winner == reference_winner
            model_correct = model_winner == reference_winner
            if practice_winner == model_winner:
                if practice_correct:
                    agree_right += 1
                else:
                    agree_wrong += 1
            else:
                if model_correct:
                    disagree_model += 1
                else:
                    disagree_practice += 1

        total = float(len(trial_scores))
        pairs.append(
            PairwiseAgreement(
                baseline_config=1,
                challenger_config=challenger,
                num_trials=len(trial_scores),
                agree_both_right=agree_right / total,
                agree_both_wrong=agree_wrong / total,
                disagree_mppm_right=disagree_model / total,
                disagree_practice_right=disagree_practice / total,
            )
        )
    return pairs


def agreement_experiment(
    setup: ExperimentSetup,
    num_cores: int = 4,
    num_trials: int = 20,
    mixes_per_trial: int = 12,
    reference_mixes: int = 60,
    mppm_mixes: int = 600,
    metric: str = "stp",
    predictors: Sequence[str] = ("mppm:foa",),
    seed: int = 53,
) -> AgreementResult:
    """Run the Figure 8 experiment (current practice uses category sampling).

    ``predictors`` lists the registry specs whose pairwise decisions
    are checked against current practice; the paper's figure is the
    default ``("mppm:foa",)`` and ``result.pairs`` always describes the
    first spec (the rest are in ``result.by_predictor``).
    """
    if metric not in ("stp", "antt"):
        raise ValueError("metric must be 'stp' or 'antt'")
    if not predictors:
        raise ValueError("at least one predictor spec is required")
    predictors = [canonical_spec(spec) for spec in predictors]
    machines = setup.design_space(num_cores=num_cores)

    model_mixes = setup.mixes(num_cores, mppm_mixes, seed=seed + 1)
    model_scores = _evaluate_mix_sets(
        setup,
        [model_mixes] * len(predictors),
        machines,
        list(predictors),
        list(predictors),
    )

    # The reference sweep and every current-practice trial go through
    # the engine as one detailed-simulation job graph.
    per_category = max(1, mixes_per_trial // len(BenchmarkClass))
    simulated_mix_sets = [setup.mixes(num_cores, reference_mixes, seed=seed)]
    labels = ["reference"]
    for trial in range(num_trials):
        simulated_mix_sets.append(
            setup.mixes(
                num_cores,
                per_category,
                seed=seed + 100 + trial,
                category=tuple(BenchmarkClass),
            )
        )
        labels.append(f"trial {trial + 1}")
    reference, *trial_scores = _evaluate_mix_sets(
        setup,
        simulated_mix_sets,
        machines,
        labels,
        ["detailed"] * len(simulated_mix_sets),
    )

    by_predictor = {
        scores.label: _pairwise_agreements(reference, scores, trial_scores, metric)
        for scores in model_scores
    }
    return AgreementResult(
        metric=metric,
        pairs=by_predictor[model_scores[0].label],
        by_predictor=by_predictor,
    )
