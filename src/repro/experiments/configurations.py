"""Tables 1 and 2: the baseline machine and the LLC design space.

These are configuration tables rather than measurements; the experiment
simply renders the configuration objects so that the reproduction of
every other experiment can be checked against the machine it claims to
run on (both at paper scale and at the scaled-down experiment scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.config import LLC_CONFIGS, MachineConfig, baseline_machine
from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup


@dataclass(frozen=True)
class ConfigurationTables:
    """Rendered content of Tables 1 and 2."""

    baseline: MachineConfig
    scaled_baseline: MachineConfig
    llc_rows: List[Mapping[str, object]]

    def to_rows(self) -> List[Mapping[str, object]]:
        return list(self.llc_rows)

    def render(self) -> str:
        lines = ["Table 1 — baseline processor configuration (paper scale):"]
        lines.append(self.baseline.describe())
        lines.append("")
        lines.append("Experiment scale (see DESIGN.md):")
        lines.append(self.scaled_baseline.describe())
        lines.append("")
        lines.append(
            format_table(
                self.llc_rows,
                columns=["config", "size_KB", "associativity", "latency", "scaled_size_KB"],
                title="Table 2 — last-level cache configurations:",
                float_format="{:.0f}",
            )
        )
        return "\n".join(lines)


def configuration_tables(setup: ExperimentSetup) -> ConfigurationTables:
    """Build the Table 1 / Table 2 report for the given experiment setup."""
    rows = []
    for number in sorted(LLC_CONFIGS):
        llc = LLC_CONFIGS[number]
        scaled_machine = setup.machine(num_cores=4, llc_config=number)
        rows.append(
            {
                "config": f"#{number}",
                "size_KB": llc.size_bytes // 1024,
                "associativity": llc.associativity,
                "latency": llc.latency,
                "scaled_size_KB": scaled_machine.llc.size_bytes // 1024,
            }
        )
    return ConfigurationTables(
        baseline=baseline_machine(num_cores=4, llc_config=1),
        scaled_baseline=setup.machine(num_cores=4, llc_config=1),
        llc_rows=rows,
    )
