"""Plain-text rendering of experiment results.

Every experiment result type has a ``to_rows()`` method returning a
list of dictionaries; this module turns those rows into aligned text
tables so that benchmark targets and example scripts can print exactly
the rows/series the paper's tables and figures report, without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

Value = Union[str, int, float]


def format_value(value: Value, float_format: str = "{:.3f}") -> str:
    """Render one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Value]],
    columns: Sequence[str] = None,
    float_format: str = "{:.3f}",
    title: str = None,
) -> str:
    """Render rows (list of dicts) as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, ""), float_format) for column in columns] for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    name: str, values: Iterable[float], float_format: str = "{:.3f}", per_line: int = 10
) -> str:
    """Render a numeric series (a figure's curve) compactly."""
    rendered = [float_format.format(value) for value in values]
    lines = [f"{name} ({len(rendered)} points):"]
    for start in range(0, len(rendered), per_line):
        lines.append("  " + " ".join(rendered[start : start + per_line]))
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * value:.{decimals}f}%"
