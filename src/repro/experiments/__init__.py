"""Experiment harness: one module per table/figure of the paper.

Every experiment is a plain function that takes an
:class:`ExperimentSetup` (the shared bundle of benchmark suite,
machine configurations, cached single-core profiles and cached
reference simulations) plus the experiment's parameters, and returns a
result object that knows how to render itself as the rows/series the
paper reports.  The ``benchmarks/`` directory contains one
pytest-benchmark target per experiment that simply calls these
functions and prints the result.

Paper mapping
-------------
=====================  ==========================================
Module                 Paper artefact
=====================  ==========================================
``configurations``     Tables 1 and 2
``workload_space``     §1 workload-count explosion
``variability``        Figure 3
``accuracy``           Figures 4 and 5 (+ §4.2 16-core numbers)
``speed``              §4.3 model-vs-simulation speed comparison
``ranking``            Figure 7
``agreement``          Figure 8
``stress``             Figure 9, Figure 6 and the §6 analysis
``ablations``          §2.2/§2.3 design-choice ablations
=====================  ==========================================
"""

from repro.experiments.setup import ExperimentConfig, ExperimentSetup, default_setup
from repro.experiments.results import MixEvaluation, evaluate_mixes

__all__ = [
    "ExperimentConfig",
    "ExperimentSetup",
    "default_setup",
    "MixEvaluation",
    "evaluate_mixes",
]
