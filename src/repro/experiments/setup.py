"""Shared experiment setup: suite, machines, profiles and reference runs.

Every experiment needs the same ingredients — the benchmark suite, the
(scaled) machine configurations of Tables 1 and 2, the single-core
profiles on each machine, and detailed multi-core reference simulations
of workload mixes.  :class:`ExperimentSetup` bundles them behind caches
so that a whole benchmark session pays each single-core simulation and
each reference multi-core simulation exactly once, mirroring the
"one-time cost" structure of the paper's methodology.

Bulk work goes through the :mod:`repro.engine`: the ``*_many`` /
``*_batch`` methods express a sweep as a job graph (a local profile
warm-up wave followed by one independent job per mix) and hand it to
the setup's executor.  With the default serial backend this behaves
exactly like the historical inline loops; with ``jobs=N`` the mix jobs
fan out over a process pool, and with ``cache_dir`` set both profiles
and mix results persist across processes — serial and parallel runs
are bit-identical either way.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import MachineConfig, llc_design_space, machine_with_llc, scaled
from repro.contention.base import ContentionModel
from repro.core import MPPM, MPPM_KERNELS, MPPMConfig
from repro.core.result import MixPrediction
from repro.engine import Executor, JobGraph, create_engine
from repro.engine import tasks as engine_tasks
from repro.predictors import (
    DEFAULT_PREDICTOR,
    PredictorError,
    canonical_spec,
    hybrid_worst_k,
    make_predictor,
    prediction_from_run,
    tag_prediction,
)
from repro.profiling import ProfileStore, SingleCoreProfile
from repro.simulators import (
    KERNELS as SINGLE_CORE_KERNELS,
    LLCAccessTrace,
    MULTI_CORE_KERNELS,
    MultiCoreRunResult,
    MultiCoreSimulator,
)
from repro.workloads import (
    BenchmarkClass,
    BenchmarkSuite,
    WorkloadMix,
    WorkloadSource,
    classify_suite,
    workload_for,
)
from repro.workloads.registry import MixCategory

#: One (mix, machine) unit of a bulk evaluation.
MixJob = Tuple[WorkloadMix, MachineConfig]

#: One (predictor spec, mix, machine) unit of a heterogeneous sweep.
PredictJob = Tuple[str, WorkloadMix, MachineConfig]

#: Fan-out map of a batched MPPM sweep: batch job key -> per-item
#: ``(op indices, per-op cache key)`` entries, in item order.
BatchScatter = Dict[str, List[Tuple[List[int], str]]]

#: Sentinel op for "run the raw reference simulator" in a sweep graph
#: (returns a MultiCoreRunResult rather than a MixPrediction).
_SIMULATE = "simulate"


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    The defaults reproduce the paper's structure at laptop scale:
    29 benchmarks, 50 profiling intervals per trace and the Table 1/2
    machines scaled down by 16 (see DESIGN.md).  ``seed`` controls all
    randomness (trace generation and mix sampling).
    """

    scale: int = 16
    num_instructions: int = 200_000
    interval_instructions: int = 4_000
    seed: int = 0
    #: Single-core replay kernel ("vectorized" or "reference"); the two
    #: are bit-identical, so the choice never invalidates cached results.
    kernel: str = "vectorized"
    #: MPPM solver kernel ("batched" or "reference"); bit-identical like
    #: the replay kernels, so — again — never part of a cache key.
    mppm_kernel: str = "batched"
    #: Multi-core interleaving kernel ("chunked", "heap" or "scan");
    #: bit-identical like the other kernel choices, so reference
    #: simulations cached under one kernel stay valid for all.
    multicore_kernel: str = "chunked"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.kernel not in SINGLE_CORE_KERNELS:
            raise ValueError(
                f"kernel must be one of {SINGLE_CORE_KERNELS}, got {self.kernel!r}"
            )
        if self.mppm_kernel not in MPPM_KERNELS:
            raise ValueError(
                f"mppm_kernel must be one of {MPPM_KERNELS}, got {self.mppm_kernel!r}"
            )
        if self.multicore_kernel not in MULTI_CORE_KERNELS:
            raise ValueError(
                f"multicore_kernel must be one of {MULTI_CORE_KERNELS}, "
                f"got {self.multicore_kernel!r}"
            )
        if self.num_instructions <= 0 or self.interval_instructions <= 0:
            raise ValueError("instruction counts must be positive")
        if self.num_instructions % self.interval_instructions != 0:
            raise ValueError(
                "num_instructions should be a multiple of interval_instructions "
                "so every interval has the same length"
            )


class ExperimentSetup:
    """Caches everything the experiments share.

    Parameters
    ----------
    config:
        Scaling/length/seed parameters.
    workload:
        A workload spec string (see :mod:`repro.workloads.registry` —
        ``"suite:spec29"``, ``"suite:spec29/scaled@8"``,
        ``"random:n=8,seed=0"``, ``"service:n=8,seed=0"``) or a
        :class:`~repro.workloads.WorkloadSource` instance.  Defaults
        to ``suite:spec29``, today's 29-benchmark suite.  The resolved
        spec string (``workload_spec``) qualifies the profile store's
        disk keys and every engine content-hash cache key.
    suite:
        An explicit benchmark suite object (legacy/ad-hoc path).  When
        given without ``workload`` it is wrapped under a canonical
        spec if the registry recognises it, else under a deterministic
        content-digest ``inline:`` spec; when given *with*
        ``workload`` it is trusted as that workload's suite (the
        engine's worker-reconstruction path).
    engine:
        The :class:`~repro.engine.Executor` bulk evaluations run on.
        Defaults to an engine built from ``jobs`` and ``cache_dir``.
    jobs:
        Worker count for the default engine (1 → serial in-process
        execution, N → a process pool), or a ``fleet:`` spec string
        (``"fleet:localhost:2"``, ``"fleet:ssh=host1,host2"``) for a
        multi-host worker fleet (see :mod:`repro.engine.remote`).
        Ignored when ``engine`` is given.
    cache_dir:
        Optional campaign cache directory: single-core profiles persist
        under ``<cache_dir>/profiles`` and engine results (reference
        simulations, MPPM predictions) under ``<cache_dir>/results``,
        making repeated sweeps near-free across processes.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        suite: Optional[BenchmarkSuite] = None,
        engine: Optional[Executor] = None,
        jobs: Union[int, str] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        workload: Optional[Union[str, WorkloadSource]] = None,
    ) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.workload = workload_for(workload, suite=suite)
        self.suite = suite if suite is not None else self.workload.suite()
        self.workload_spec = self.workload.spec
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.store = ProfileStore(
            num_instructions=self.config.num_instructions,
            interval_instructions=self.config.interval_instructions,
            seed=self.config.seed,
            cache_dir=self.cache_dir / "profiles" if self.cache_dir is not None else None,
            kernel=self.config.kernel,
            workload_spec=self.workload_spec,
        )
        self.engine = engine if engine is not None else create_engine(jobs, self.cache_dir)
        self.token = engine_tasks.register_setup(self)
        self._reference_cache: Dict[Tuple[Tuple[str, ...], str, int], MultiCoreRunResult] = {}
        self._prediction_cache: Dict[
            Tuple[str, Tuple[str, ...], str, int], MixPrediction
        ] = {}
        self._profiles_cache: Dict[str, Dict[str, SingleCoreProfile]] = {}

    # ------------------------------------------------------------------
    # Machines
    # ------------------------------------------------------------------

    def machine(self, num_cores: int = 4, llc_config: int = 1) -> MachineConfig:
        """The Table 1 machine with a Table 2 LLC, scaled for the experiments."""
        return scaled(machine_with_llc(llc_config, num_cores=num_cores), self.config.scale)

    def design_space(self, num_cores: int = 4) -> List[MachineConfig]:
        """All six Table 2 machines (scaled), in configuration order."""
        return [scaled(machine, self.config.scale) for machine in llc_design_space(num_cores)]

    # ------------------------------------------------------------------
    # Benchmarks, profiles, classification
    # ------------------------------------------------------------------

    @property
    def benchmark_names(self) -> List[str]:
        return self.suite.names

    def mixes(
        self,
        num_programs: int,
        num_mixes: int,
        seed: int = 0,
        unique: bool = True,
        category: Optional["MixCategory"] = None,
    ) -> List[WorkloadMix]:
        """Sample multi-program mixes through the setup's workload source.

        Identical to ``sample_mixes(self.benchmark_names, ...)`` — the
        registry's sources draw from the same sorted name list — but
        routed through the Workload API so experiments stay agnostic of
        where the suite came from.  ``category`` constrains the sample
        to MEM/COMP/MIX classes ("current practice" sampling): a single
        category or a sequence, in which case ``num_mixes`` counts per
        category (see :meth:`WorkloadSource.mixes`).
        """
        return self.workload.mixes(
            num_programs, num_mixes, seed=seed, unique=unique, category=category
        )

    def classification(self) -> Dict[str, BenchmarkClass]:
        """MEM / COMP / MIX classes used for category-based mix selection."""
        return classify_suite(self.suite)

    def profiles(self, machine: MachineConfig) -> Dict[str, SingleCoreProfile]:
        """Single-core profiles of every benchmark on ``machine`` (cached)."""
        key = machine.profile_key()
        if key not in self._profiles_cache:
            self._profiles_cache[key] = {
                spec.name: self.store.get_profile(spec, machine) for spec in self.suite
            }
        return self._profiles_cache[key]

    def llc_traces(self, mix: WorkloadMix, machine: MachineConfig) -> List[LLCAccessTrace]:
        """The per-program LLC access traces for one mix (cached per benchmark)."""
        return [self.store.get_llc_trace(self.suite[name], machine) for name in mix.programs]

    def mix_profiles(self, mix: WorkloadMix, machine: MachineConfig) -> Dict[str, SingleCoreProfile]:
        """Single-core profiles of just the mix's own benchmarks.

        Going through the store (rather than profiling the whole suite
        up front) keeps engine workers from paying for benchmarks they
        never touch.
        """
        return {
            name: self.store.get_profile(self.suite[name], machine)
            for name in sorted(set(mix.programs))
        }

    # ------------------------------------------------------------------
    # Model and reference simulation
    # ------------------------------------------------------------------

    def mppm(
        self,
        machine: MachineConfig,
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> MPPM:
        """An MPPM instance for ``machine`` (on the configured solver kernel)."""
        return MPPM(
            machine,
            contention_model=contention_model,
            config=mppm_config,
            kernel=self.config.mppm_kernel,
        )

    def predictor(self, spec: str, mppm_config: Optional[MPPMConfig] = None):
        """A :class:`~repro.predictors.Predictor` bound to this setup."""
        return make_predictor(spec, self, mppm_config=mppm_config)

    def predict(
        self,
        mix: WorkloadMix,
        machine: MachineConfig,
        predictor: Optional[str] = None,
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> MixPrediction:
        """One predictor's estimate for one mix on one machine.

        ``predictor`` is a registry spec (see :mod:`repro.predictors`);
        the default is the paper's model, ``"mppm:foa"``.  Predictions
        with a default configuration are cached (they are
        deterministic), so experiments that revisit the same mixes —
        e.g. the ranking and agreement studies — pay for each
        prediction once.

        ``contention_model`` takes an explicit model *instance* for the
        ablations; that path bypasses the registry (an instance has no
        content-stable spec) and is never cached.  It contradicts any
        explicit ``predictor`` spec (specs encode their own contention
        model), so passing both is an error rather than a silent pick.
        """
        if contention_model is not None:
            if predictor is not None:
                raise PredictorError(
                    "pass either a predictor spec or an explicit contention_model "
                    "instance, not both (specs encode their own contention model)"
                )
            # Ablation path: an explicit contention-model instance.
            model = self.mppm(machine, contention_model=contention_model, mppm_config=mppm_config)
            return model.predict_mix(mix, self.mix_profiles(mix, machine))
        spec = canonical_spec(predictor if predictor is not None else DEFAULT_PREDICTOR)
        cacheable = mppm_config is None
        key = (spec, mix.programs, machine.profile_key(), machine.num_cores)
        if cacheable and key in self._prediction_cache:
            return self._prediction_cache[key]
        prediction = self.predictor(spec, mppm_config=mppm_config).predict(mix, machine)
        if cacheable:
            self._prediction_cache[key] = prediction
        return prediction

    def simulate(self, mix: WorkloadMix, machine: MachineConfig) -> MultiCoreRunResult:
        """Detailed (reference) multi-core simulation of one mix, cached."""
        key = (mix.programs, machine.profile_key(), machine.num_cores)
        cached = self._reference_cache.get(key)
        if cached is not None:
            return cached
        if machine.num_cores != mix.num_programs:
            machine = machine.with_num_cores(mix.num_programs)
        result = MultiCoreSimulator(
            machine, kernel=self.config.multicore_kernel
        ).run(self.llc_traces(mix, machine))
        self._reference_cache[key] = result
        return result

    def reference_runs(self) -> int:
        """Number of detailed multi-core simulations performed so far."""
        return len(self._reference_cache)

    # ------------------------------------------------------------------
    # Bulk evaluation through the engine
    # ------------------------------------------------------------------

    def _sweep_graph(
        self,
        ops: Sequence[PredictJob],
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> Tuple[JobGraph, "BatchScatter"]:
        """One graph for a sweep: a profile warm-up wave, then mix jobs.

        Each op is ``(spec, mix, machine)`` where ``spec`` is a
        predictor spec or the ``"simulate"`` sentinel for the raw
        reference simulator; op ``i``'s result is keyed ``"op:i"``.
        ``detailed`` ops run as simulate jobs (their expensive part IS
        the reference simulation, and this shares one cache entry with
        every other reference run of the pair); :meth:`_run_ops`
        repackages their results as predictions.  The warm-up wave
        covers every (benchmark, machine) pair the sweep touches, runs
        locally (so forked pool workers inherit the warm profile store)
        and is optional (skipped when every mix job is served from the
        result cache).

        Uncached ``mppm:*`` ops do not become per-op jobs: they are
        deduplicated by per-op cache key and packed into at most
        ``engine.jobs`` batch jobs per spec, each of which solves its
        items through one mix-major fixed-point pass
        (:func:`repro.engine.tasks.predict_mppm_batch_job`).  The
        returned scatter maps each batch job's key to its
        ``(op indices, per-op cache key)`` entries so :meth:`_run_ops`
        can fan the list result back out and store every prediction
        under the key an individual job would have used.  Cached
        ``mppm:*`` ops keep per-op jobs (which resolve from the cache
        without computing anything).
        """
        graph = JobGraph()
        profile_keys: Dict[Tuple[str, str], str] = {}
        for _, mix, machine in ops:
            for name in sorted(set(mix.programs)):
                pair_key = (machine.profile_key(), name)
                if pair_key not in profile_keys:
                    job = graph.add(
                        engine_tasks.profile_job(self, self.suite[name], machine, optional=True)
                    )
                    profile_keys[pair_key] = job.key
        # spec -> per-op cache key -> ([op indices], (mix, machine), deps)
        batchable: Dict[str, Dict[str, Tuple[List[int], MixJob, Tuple[str, ...]]]] = {}
        for i, (spec, mix, machine) in enumerate(ops):
            deps = tuple(
                profile_keys[(machine.profile_key(), name)] for name in sorted(set(mix.programs))
            )
            if spec in (_SIMULATE, "detailed"):
                graph.add(
                    engine_tasks.simulate_job(self, mix, machine, key=f"op:{i}", deps=deps)
                )
                continue
            if contention_model is None and spec.startswith("mppm:"):
                cache_key = engine_tasks.predict_cache_key(
                    self, spec, mix, machine, mppm_config
                )
                if not self.engine.is_cached(cache_key):
                    entries = batchable.setdefault(spec, {})
                    if cache_key in entries:
                        entries[cache_key][0].append(i)
                    else:
                        entries[cache_key] = ([i], (mix, machine), deps)
                    continue
            graph.add(
                engine_tasks.predict_job(
                    self,
                    mix,
                    machine,
                    key=f"op:{i}",
                    deps=deps,
                    predictor=spec,
                    contention_model=contention_model,
                    mppm_config=mppm_config,
                )
            )
        scatter: BatchScatter = {}
        for spec, entries in batchable.items():
            unique = list(entries.items())
            num_chunks = min(len(unique), max(1, self.engine.jobs))
            chunk_size = -(-len(unique) // num_chunks)
            for chunk_number, start in enumerate(range(0, len(unique), chunk_size)):
                chunk = unique[start : start + chunk_size]
                job_key = f"batch:{spec}:{chunk_number}"
                deps = tuple(
                    sorted({dep for _, (_, _, item_deps) in chunk for dep in item_deps})
                )
                graph.add(
                    engine_tasks.predict_mppm_batch_job(
                        self,
                        items=tuple(item for _, (_, item, _) in chunk),
                        key=job_key,
                        deps=deps,
                        predictor=spec,
                        mppm_config=mppm_config,
                    )
                )
                scatter[job_key] = [
                    (indices, cache_key) for cache_key, (indices, _, _) in chunk
                ]
        return graph, scatter

    def _parallel_warm(self, graph: JobGraph) -> None:
        """Fan the one-time profiling cost out over the worker pool.

        The graph's own profile jobs are *local* (so forked workers
        inherit the warm store), which serialises the dominant one-time
        cost.  When the backend has real workers and at least one mix
        job will actually run, this phase instead profiles every
        missing (benchmark, machine) pair on the pool, absorbs the
        returned bundles into the parent store, and recycles the
        workers so the mix waves fork from the now-warm parent.
        """
        if self.engine.jobs <= 1:
            return
        uncached = [
            job
            for job in graph
            if job.kind in ("predict", "simulate") and not self.engine.is_cached(job.cache_key)
        ]
        if not uncached:
            return
        # Which profile jobs do the surviving mix jobs depend on — and
        # do any of them need the LLC trace (reference simulation) or
        # just the profile (prediction)?  A disk-cached profile settles
        # the latter without any simulation at all.
        needs_profile = {dep for job in uncached for dep in job.deps}
        needs_trace = {
            dep for job in uncached if job.kind == "simulate" for dep in job.deps
        }
        needed = []
        for job in graph:
            if job.kind != "profile" or job.key not in needs_profile:
                continue
            spec, machine = job.args[-2], job.args[-1]
            if self.store.has(spec, machine):
                continue
            if job.key not in needs_trace and self.store.load_if_cached(spec, machine):
                continue
            needed.append((spec, machine))
        if not needed:
            return
        bundles = self.engine.map(
            [
                engine_tasks.profile_bundle_job(self, spec, machine, key=f"warm:{i}")
                for i, (spec, machine) in enumerate(needed)
            ]
        )
        for (spec, machine), profiled in zip(needed, bundles):
            self.store.absorb(spec, machine, profiled)
        self.engine.refresh_workers()

    def _run_ops(
        self,
        ops: Sequence[PredictJob],
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> List[object]:
        """Run a sweep, expanding two-stage ``hybrid:*`` ops if present.

        Plain sweeps go straight to :meth:`_run_plain_ops`.  Hybrid ops
        run the default MPPM spec for the whole pool first, then each
        hybrid spec's predicted worst-``K`` ops (lowest predicted system
        throughput; ties broken by op index, so serial and parallel
        runs pick identical mixes) are re-run as plain ``detailed`` ops
        — through the same sweep graph, sharing job and cache entries
        with every other detailed run of those (mix, machine) pairs.
        Every hybrid op's result is tagged with the hybrid spec.
        """
        hybrid_present = any(spec.startswith("hybrid:") for spec, _, _ in ops)
        if not hybrid_present:
            return self._run_plain_ops(ops, contention_model, mppm_config)
        if contention_model is not None or mppm_config is not None:
            raise PredictorError(
                "hybrid:* specs carry their own two-stage configuration; "
                "they accept neither an explicit contention model nor an "
                "MPPMConfig"
            )
        base_ops = [
            (DEFAULT_PREDICTOR, mix, machine) if spec.startswith("hybrid:") else (spec, mix, machine)
            for spec, mix, machine in ops
        ]
        out = self._run_plain_ops(base_ops)
        by_spec: Dict[str, List[int]] = {}
        for i, (spec, _, _) in enumerate(ops):
            if spec.startswith("hybrid:"):
                by_spec.setdefault(spec, []).append(i)
        spot: List[int] = []
        for spec in sorted(by_spec):
            indices = by_spec[spec]
            ranked = sorted(
                indices, key=lambda index: (out[index].system_throughput, index)
            )
            spot.extend(ranked[: hybrid_worst_k(spec)])
        spot_results = self._run_plain_ops(
            [("detailed", ops[index][1], ops[index][2]) for index in spot]
        )
        for index, prediction in zip(spot, spot_results):
            out[index] = prediction
        for spec, indices in by_spec.items():
            for index in indices:
                out[index] = tag_prediction(out[index], spec)
        return out

    def _run_plain_ops(
        self,
        ops: Sequence[PredictJob],
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> List[object]:
        """Run one sweep graph and return op results in input order.

        ``detailed`` ops come back from the graph as raw
        :class:`MultiCoreRunResult`\\ s (they share the reference
        simulation's job and cache entry) and are repackaged as
        predictions here.  Batched ``mppm:*`` jobs come back as lists;
        their predictions are scattered to the op slots (duplicated ops
        share one object) and stored under the per-op cache keys.
        """
        graph, scatter = self._sweep_graph(ops, contention_model, mppm_config)
        self._parallel_warm(graph)
        results = self.engine.run(graph)
        out: List[object] = [None] * len(ops)
        for job_key, entries in scatter.items():
            predictions = results[job_key]
            for prediction, (indices, cache_key) in zip(predictions, entries):
                self.engine.store(cache_key, prediction)
                for index in indices:
                    out[index] = prediction
        for i, (spec, _, _) in enumerate(ops):
            key = f"op:{i}"
            if key in results:
                value = results[key]
                out[i] = (
                    prediction_from_run(value, kernel=self.config.multicore_kernel)
                    if spec == "detailed"
                    else value
                )
        return out

    def predictor_batch(self, items: Sequence[PredictJob]) -> List[MixPrediction]:
        """Heterogeneous predictor sweep: (spec, mix, machine) triples.

        Every item becomes one engine job keyed by its spec, so a sweep
        that mixes estimators — e.g. ``mppm:foa`` against the baselines
        and ``detailed`` — caches and parallelises exactly like a
        homogeneous one.  Results come back in input order.
        """
        ops = [(canonical_spec(spec), mix, machine) for spec, mix, machine in items]
        return self._run_ops(ops)

    def predict_batch(
        self,
        pairs: Sequence[MixJob],
        predictor: Optional[str] = None,
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> List[MixPrediction]:
        """One predictor's estimates for many (mix, machine) pairs, in input order."""
        if contention_model is not None and predictor is not None:
            raise PredictorError(
                "pass either a predictor spec or an explicit contention_model "
                "instance, not both (specs encode their own contention model)"
            )
        spec = canonical_spec(predictor if predictor is not None else DEFAULT_PREDICTOR)
        ops = [(spec, mix, machine) for mix, machine in pairs]
        return self._run_ops(ops, contention_model, mppm_config)

    def simulate_batch(self, pairs: Sequence[MixJob]) -> List[MultiCoreRunResult]:
        """Reference simulations for many (mix, machine) pairs, in input order."""
        return self._run_ops([(_SIMULATE, mix, machine) for mix, machine in pairs])

    def evaluate_predictors(
        self, pairs: Sequence[MixJob], predictors: Sequence[str]
    ) -> Dict[str, List["MixEvaluation"]]:
        """Evaluate several predictors against the reference in ONE job graph.

        Returns ``{spec: [MixEvaluation, ...]}`` with evaluations in
        pair order; the reference simulation of each pair is shared by
        every predictor, so comparing N estimators costs N prediction
        sweeps plus a single simulation sweep.  A ``detailed`` spec in
        the list is served from that same simulation sweep (a pure
        repackaging), not simulated a second time.
        """
        from repro.experiments.results import MixEvaluation

        specs = [canonical_spec(spec) for spec in predictors]
        model_specs = [spec for spec in specs if spec != "detailed"]
        ops: List[PredictJob] = [
            (spec, mix, machine) for spec in model_specs for mix, machine in pairs
        ]
        ops.extend((_SIMULATE, mix, machine) for mix, machine in pairs)
        results = self._run_ops(ops)
        measured = results[len(model_specs) * len(pairs) :]
        predicted_by_spec = {
            spec: results[index * len(pairs) : (index + 1) * len(pairs)]
            for index, spec in enumerate(model_specs)
        }
        if "detailed" in specs:
            predicted_by_spec["detailed"] = [
                prediction_from_run(run, kernel=self.config.multicore_kernel)
                for run in measured
            ]
        evaluated: Dict[str, List[MixEvaluation]] = {}
        for spec in specs:
            evaluated[spec] = [
                MixEvaluation(mix=mix, predicted=prediction, measured=measurement)
                for (mix, _), prediction, measurement in zip(
                    pairs, predicted_by_spec[spec], measured
                )
            ]
        return evaluated

    def evaluate_batch(
        self, pairs: Sequence[MixJob], predictor: Optional[str] = None
    ) -> List["MixEvaluation"]:
        """One predictor and the reference for many (mix, machine) pairs."""
        spec = canonical_spec(predictor if predictor is not None else DEFAULT_PREDICTOR)
        return self.evaluate_predictors(pairs, (spec,))[spec]

    def predict_many(
        self,
        mixes: Sequence[WorkloadMix],
        machine: MachineConfig,
        predictor: Optional[str] = None,
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> List[MixPrediction]:
        """One predictor's estimates for many mixes on one machine."""
        return self.predict_batch(
            [(mix, machine) for mix in mixes], predictor, contention_model, mppm_config
        )

    def simulate_many(
        self, mixes: Sequence[WorkloadMix], machine: MachineConfig
    ) -> List[MultiCoreRunResult]:
        """Reference simulations for many mixes on one machine."""
        return self.simulate_batch([(mix, machine) for mix in mixes])

    def evaluate_many(
        self,
        mixes: Sequence[WorkloadMix],
        machine: MachineConfig,
        predictor: Optional[str] = None,
    ) -> List["MixEvaluation"]:
        """Predictions and reference simulations for many mixes on one machine."""
        return self.evaluate_batch([(mix, machine) for mix in mixes], predictor)

    def close(self) -> None:
        """Release the engine's worker pool (idempotent; serial is a no-op)."""
        self.engine.close()


@functools.lru_cache(maxsize=4)
def default_setup(seed: int = 0) -> ExperimentSetup:
    """A process-wide shared setup (used by the benchmark targets).

    Benchmarks for different figures share single-core profiles and
    reference simulations through this cache, exactly as a research
    group would reuse its simulation results across plots.
    """
    return ExperimentSetup(config=ExperimentConfig(seed=seed))
