"""Shared experiment setup: suite, machines, profiles and reference runs.

Every experiment needs the same ingredients — the benchmark suite, the
(scaled) machine configurations of Tables 1 and 2, the single-core
profiles on each machine, and detailed multi-core reference simulations
of workload mixes.  :class:`ExperimentSetup` bundles them behind caches
so that a whole benchmark session pays each single-core simulation and
each reference multi-core simulation exactly once, mirroring the
"one-time cost" structure of the paper's methodology.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import MachineConfig, llc_design_space, machine_with_llc, scaled
from repro.contention.base import ContentionModel
from repro.core import MPPM, MPPMConfig
from repro.core.result import MixPrediction
from repro.profiling import ProfileStore, SingleCoreProfile
from repro.simulators import LLCAccessTrace, MultiCoreRunResult, MultiCoreSimulator
from repro.workloads import (
    BenchmarkClass,
    BenchmarkSuite,
    WorkloadMix,
    classify_suite,
    spec_cpu2006_like_suite,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    The defaults reproduce the paper's structure at laptop scale:
    29 benchmarks, 50 profiling intervals per trace and the Table 1/2
    machines scaled down by 16 (see DESIGN.md).  ``seed`` controls all
    randomness (trace generation and mix sampling).
    """

    scale: int = 16
    num_instructions: int = 200_000
    interval_instructions: int = 4_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.num_instructions <= 0 or self.interval_instructions <= 0:
            raise ValueError("instruction counts must be positive")
        if self.num_instructions % self.interval_instructions != 0:
            raise ValueError(
                "num_instructions should be a multiple of interval_instructions "
                "so every interval has the same length"
            )


class ExperimentSetup:
    """Caches everything the experiments share.

    Parameters
    ----------
    config:
        Scaling/length/seed parameters.
    suite:
        The benchmark suite; defaults to the full 29-benchmark
        SPEC CPU2006-like suite.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        suite: Optional[BenchmarkSuite] = None,
    ) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.suite = suite if suite is not None else spec_cpu2006_like_suite()
        self.store = ProfileStore(
            num_instructions=self.config.num_instructions,
            interval_instructions=self.config.interval_instructions,
            seed=self.config.seed,
        )
        self._reference_cache: Dict[Tuple[Tuple[str, ...], str, int], MultiCoreRunResult] = {}
        self._prediction_cache: Dict[Tuple[Tuple[str, ...], str, int], MixPrediction] = {}
        self._profiles_cache: Dict[str, Dict[str, SingleCoreProfile]] = {}

    # ------------------------------------------------------------------
    # Machines
    # ------------------------------------------------------------------

    def machine(self, num_cores: int = 4, llc_config: int = 1) -> MachineConfig:
        """The Table 1 machine with a Table 2 LLC, scaled for the experiments."""
        return scaled(machine_with_llc(llc_config, num_cores=num_cores), self.config.scale)

    def design_space(self, num_cores: int = 4) -> List[MachineConfig]:
        """All six Table 2 machines (scaled), in configuration order."""
        return [scaled(machine, self.config.scale) for machine in llc_design_space(num_cores)]

    # ------------------------------------------------------------------
    # Benchmarks, profiles, classification
    # ------------------------------------------------------------------

    @property
    def benchmark_names(self) -> List[str]:
        return self.suite.names

    def classification(self) -> Dict[str, BenchmarkClass]:
        """MEM / COMP / MIX classes used for category-based mix selection."""
        return classify_suite(self.suite)

    def profiles(self, machine: MachineConfig) -> Dict[str, SingleCoreProfile]:
        """Single-core profiles of every benchmark on ``machine`` (cached)."""
        key = machine.profile_key()
        if key not in self._profiles_cache:
            self._profiles_cache[key] = {
                spec.name: self.store.get_profile(spec, machine) for spec in self.suite
            }
        return self._profiles_cache[key]

    def llc_traces(self, mix: WorkloadMix, machine: MachineConfig) -> List[LLCAccessTrace]:
        """The per-program LLC access traces for one mix (cached per benchmark)."""
        return [self.store.get_llc_trace(self.suite[name], machine) for name in mix.programs]

    # ------------------------------------------------------------------
    # Model and reference simulation
    # ------------------------------------------------------------------

    def mppm(
        self,
        machine: MachineConfig,
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> MPPM:
        """An MPPM instance for ``machine``."""
        return MPPM(machine, contention_model=contention_model, config=mppm_config)

    def predict(
        self,
        mix: WorkloadMix,
        machine: MachineConfig,
        contention_model: Optional[ContentionModel] = None,
        mppm_config: Optional[MPPMConfig] = None,
    ) -> MixPrediction:
        """MPPM prediction for one mix on one machine.

        Predictions with the default contention model and configuration
        are cached (they are deterministic), so experiments that revisit
        the same mixes — e.g. the ranking and agreement studies — pay
        for each prediction once.
        """
        cacheable = contention_model is None and mppm_config is None
        key = (mix.programs, machine.profile_key(), machine.num_cores)
        if cacheable and key in self._prediction_cache:
            return self._prediction_cache[key]
        model = self.mppm(machine, contention_model=contention_model, mppm_config=mppm_config)
        prediction = model.predict_mix(mix, self.profiles(machine))
        if cacheable:
            self._prediction_cache[key] = prediction
        return prediction

    def simulate(self, mix: WorkloadMix, machine: MachineConfig) -> MultiCoreRunResult:
        """Detailed (reference) multi-core simulation of one mix, cached."""
        key = (mix.programs, machine.profile_key(), machine.num_cores)
        cached = self._reference_cache.get(key)
        if cached is not None:
            return cached
        if machine.num_cores != mix.num_programs:
            machine = machine.with_num_cores(mix.num_programs)
        result = MultiCoreSimulator(machine).run(self.llc_traces(mix, machine))
        self._reference_cache[key] = result
        return result

    def reference_runs(self) -> int:
        """Number of detailed multi-core simulations performed so far."""
        return len(self._reference_cache)


@functools.lru_cache(maxsize=4)
def default_setup(seed: int = 0) -> ExperimentSetup:
    """A process-wide shared setup (used by the benchmark targets).

    Benchmarks for different figures share single-core profiles and
    reference simulations through this cache, exactly as a research
    group would reuse its simulation results across plots.
    """
    return ExperimentSetup(config=ExperimentConfig(seed=seed))
