"""Design-choice ablations called out in DESIGN.md.

The paper makes two explicit modelling choices without publishing a
sensitivity analysis: the cache-contention model (FOA, §2.3, "we found
it to be accurate enough") and the exponential-moving-average smoothing
of the slowdown update (§2.2, "we found [it] to be important for
achieving good accuracy").  These ablations quantify both on this
reproduction:

* :func:`contention_model_ablation` — MPPM accuracy with FOA versus the
  SDC-competition and inductive-probability models;
* :func:`smoothing_ablation` — MPPM accuracy as a function of the EMA
  factor ``f`` (``f = 0`` disables smoothing entirely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from repro.core import MPPMConfig
from repro.experiments.reporting import format_table
from repro.experiments.results import MixEvaluation
from repro.experiments.setup import ExperimentSetup
from repro.metrics import absolute_relative_error
from repro.workloads import WorkloadMix


@dataclass(frozen=True)
class AblationRow:
    """Average errors of one model variant."""

    variant: str
    stp_error: float
    antt_error: float
    slowdown_error: float


@dataclass(frozen=True)
class AblationResult:
    """A table of model variants and their accuracy."""

    title: str
    rows: List[AblationRow]

    def row(self, variant: str) -> AblationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(f"no ablation row for variant {variant!r}")

    def best_variant_by_stp(self) -> str:
        return min(self.rows, key=lambda row: row.stp_error).variant

    def to_rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "variant": row.variant,
                "STP_error_%": 100.0 * row.stp_error,
                "ANTT_error_%": 100.0 * row.antt_error,
                "slowdown_error_%": 100.0 * row.slowdown_error,
            }
            for row in self.rows
        ]

    def render(self) -> str:
        return format_table(self.to_rows(), title=self.title, float_format="{:.2f}")


def _evaluate_variant(
    setup: ExperimentSetup,
    mixes: Sequence[WorkloadMix],
    machine,
    variant: str,
    predictor=None,
    contention_model=None,
    mppm_config=None,
) -> AblationRow:
    stp_errors, antt_errors, slowdown_errors = [], [], []
    for mix in mixes:
        predicted = setup.predict(
            mix,
            machine,
            predictor=predictor,
            contention_model=contention_model,
            mppm_config=mppm_config,
        )
        measured = setup.simulate(mix, machine)
        stp_errors.append(
            absolute_relative_error(predicted.system_throughput, measured.system_throughput)
        )
        antt_errors.append(
            absolute_relative_error(
                predicted.average_normalized_turnaround_time,
                measured.average_normalized_turnaround_time,
            )
        )
        for p, m in zip(predicted.programs, measured.programs):
            slowdown_errors.append(absolute_relative_error(p.slowdown, m.slowdown))
    return AblationRow(
        variant=variant,
        stp_error=float(np.mean(stp_errors)),
        antt_error=float(np.mean(antt_errors)),
        slowdown_error=float(np.mean(slowdown_errors)),
    )


def contention_model_ablation(
    setup: ExperimentSetup,
    models: Sequence[str] = ("foa", "sdc", "prob"),
    num_cores: int = 4,
    llc_config: int = 1,
    num_mixes: int = 30,
    seed: int = 71,
) -> AblationResult:
    """Compare MPPM accuracy across cache-contention models."""
    machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
    mixes = setup.mixes(num_cores, num_mixes, seed=seed)
    # Registry specs (mppm:foa, mppm:sdc, …) instead of model
    # instances: the predictions are bit-identical but memoised.
    rows = [
        _evaluate_variant(setup, mixes, machine, model_name, predictor=f"mppm:{model_name}")
        for model_name in models
    ]
    return AblationResult(
        title=(
            "Ablation — cache-contention model inside MPPM "
            "(the paper uses FOA; §2.3 claims the model is pluggable):"
        ),
        rows=rows,
    )


def smoothing_ablation(
    setup: ExperimentSetup,
    smoothing_factors: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
    num_cores: int = 4,
    llc_config: int = 1,
    num_mixes: int = 30,
    seed: int = 73,
) -> AblationResult:
    """Sweep the EMA smoothing factor of the slowdown update."""
    machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
    mixes = setup.mixes(num_cores, num_mixes, seed=seed)
    rows = [
        _evaluate_variant(
            setup, mixes, machine, f"f={factor:.2f}", mppm_config=MPPMConfig(smoothing=factor)
        )
        for factor in smoothing_factors
    ]
    return AblationResult(
        title=(
            "Ablation — exponential-moving-average smoothing factor of the slowdown update "
            "(§2.2 reports smoothing matters for phased programs):"
        ),
        rows=rows,
    )


def iteration_ablation(
    setup: ExperimentSetup,
    num_cores: int = 4,
    llc_config: int = 1,
    num_mixes: int = 30,
    seed: int = 83,
) -> AblationResult:
    """Quantify the value of MPPM's iterative entanglement modelling.

    Compares full MPPM against two baselines (all three are registry
    predictors now, see :mod:`repro.predictors`): ignoring contention
    entirely, and applying the contention model once without iterating.
    """
    machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
    mixes = setup.mixes(num_cores, num_mixes, seed=seed)

    variants = {
        "MPPM (iterative)": "mppm:foa",
        "one-shot contention": "baseline:one-shot",
        "no contention": "baseline:no-contention",
    }

    rows = [
        _evaluate_variant(setup, mixes, machine, variant, predictor=spec)
        for variant, spec in variants.items()
    ]
    return AblationResult(
        title=(
            "Ablation — value of the iterative entanglement model "
            "(full MPPM vs one-shot contention vs ignoring contention):"
        ),
        rows=rows,
    )


def update_rule_ablation(
    setup: ExperimentSetup,
    num_cores: int = 4,
    llc_config: int = 1,
    num_mixes: int = 30,
    seed: int = 79,
) -> AblationResult:
    """Compare the literal Figure 2 slowdown update with the self-consistent one."""
    machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
    mixes = setup.mixes(num_cores, num_mixes, seed=seed)
    rows = [
        _evaluate_variant(
            setup, mixes, machine, variant, mppm_config=MPPMConfig(literal_figure2_update=literal)
        )
        for variant, literal in (("self-consistent", False), ("literal Figure 2", True))
    ]
    return AblationResult(
        title=(
            "Ablation — slowdown-update normalisation "
            "(see MPPMConfig.literal_figure2_update for the interpretation difference):"
        ),
        rows=rows,
    )
