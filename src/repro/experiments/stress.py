"""Figure 9, Figure 6 and the Section 6 analysis: stress workloads.

MPPM's headline application is finding the workload mixes that stress
the multi-core design — the mixes with the lowest STP.  This module
implements:

* :func:`stress_experiment` (Figure 9): evaluate a large set of mixes
  with both MPPM and the detailed reference simulator, sort them by
  measured STP and report both curves plus how many of the worst-K
  measured mixes MPPM also places in its own worst K (the paper finds
  23 of the worst 25);
* :func:`worst_mix_case_study` (Figure 6): for the worst-STP mix,
  report each program's isolated CPI, measured multi-core CPI and
  MPPM-predicted multi-core CPI (the paper's example is
  2x gamess + hmmer + soplex, with gamess slowed down more than 2x);
* :func:`benchmark_sensitivity` (Section 6 text): the largest slowdown
  each benchmark experiences across the evaluated mixes (the paper
  reports gamess at 2.2x, gobmk at 1.3x, soplex/omnetpp/h264/xalan at
  about 1.2x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.experiments.reporting import format_series, format_table
from repro.experiments.results import MixEvaluation
from repro.experiments.setup import ExperimentSetup
from repro.predictors import lookup_spec
from repro.workloads import WorkloadMix


@dataclass(frozen=True)
class StressResult:
    """Figure 9: sorted STP curves and worst-case overlap.

    ``evaluations`` (and every derived curve/overlap) describes the
    primary predictor — ``predictor`` names its registry spec; when
    several predictors were requested, ``by_predictor`` carries each
    spec's evaluations of the same mixes.
    """

    num_cores: int
    llc_config: int
    evaluations: List[MixEvaluation]
    worst_k: int
    predictor: str = "mppm:foa"
    by_predictor: Optional[Mapping[str, List[MixEvaluation]]] = None

    def evaluations_for(self, predictor: str) -> List[MixEvaluation]:
        """The evaluations of one requested predictor spec."""
        spec = lookup_spec(predictor)
        if self.by_predictor and spec in self.by_predictor:
            return self.by_predictor[spec]
        raise KeyError(f"no stress evaluations for predictor {predictor!r}")

    # ------------------------------------------------------------------
    # Sorted curves
    # ------------------------------------------------------------------

    def sorted_by_measured_stp(self) -> List[MixEvaluation]:
        return sorted(self.evaluations, key=lambda evaluation: evaluation.measured_stp)

    def measured_stp_curve(self) -> List[float]:
        """Measured STP, mixes sorted by increasing measured STP (Figure 9's x-axis)."""
        return [evaluation.measured_stp for evaluation in self.sorted_by_measured_stp()]

    def predicted_stp_curve(self) -> List[float]:
        """MPPM STP of the same mixes, in the same (measured-sorted) order."""
        return [evaluation.predicted_stp for evaluation in self.sorted_by_measured_stp()]

    # ------------------------------------------------------------------
    # Worst-case identification
    # ------------------------------------------------------------------

    def worst_mixes_measured(self, k: Optional[int] = None) -> List[WorkloadMix]:
        k = k if k is not None else self.worst_k
        return [evaluation.mix for evaluation in self.sorted_by_measured_stp()[:k]]

    def worst_mixes_predicted(self, k: Optional[int] = None) -> List[WorkloadMix]:
        k = k if k is not None else self.worst_k
        ordered = sorted(self.evaluations, key=lambda evaluation: evaluation.predicted_stp)
        return [evaluation.mix for evaluation in ordered[:k]]

    def worst_case_overlap(self, k: Optional[int] = None) -> int:
        """How many of the measured worst-K mixes MPPM also ranks in its worst K."""
        k = k if k is not None else self.worst_k
        measured: Set[Tuple[str, ...]] = {mix.programs for mix in self.worst_mixes_measured(k)}
        predicted: Set[Tuple[str, ...]] = {mix.programs for mix in self.worst_mixes_predicted(k)}
        return len(measured & predicted)

    def worst_mix(self) -> MixEvaluation:
        """The single worst mix by measured STP."""
        return self.sorted_by_measured_stp()[0]

    def to_rows(self) -> List[Mapping[str, object]]:
        rows = []
        for index, evaluation in enumerate(self.sorted_by_measured_stp()):
            rows.append(
                {
                    "rank": index + 1,
                    "mix": evaluation.mix.label(),
                    "measured_STP": evaluation.measured_stp,
                    "MPPM_STP": evaluation.predicted_stp,
                }
            )
        return rows

    def render(self) -> str:
        lines = [
            f"Figure 9 — {len(self.evaluations)} {self.num_cores}-program workloads "
            f"(config #{self.llc_config}) sorted by measured STP:",
            format_series("measured STP (sorted)", self.measured_stp_curve()),
            format_series("MPPM STP (same order)", self.predicted_stp_curve()),
            (
                f"MPPM identifies {self.worst_case_overlap()} of the {self.worst_k} worst-case "
                f"workloads (paper: 23 of 25)."
            ),
        ]
        return "\n".join(lines)


def stress_experiment(
    setup: ExperimentSetup,
    num_cores: int = 4,
    llc_config: int = 1,
    num_mixes: int = 60,
    worst_k: int = 10,
    predictors: Sequence[str] = ("mppm:foa",),
    seed: int = 61,
) -> StressResult:
    """Run the Figure 9 experiment (paper: 150 mixes, worst 25).

    ``predictors`` lists the registry specs scanned for worst-case
    mixes; the headline curves and overlap use the first spec, and the
    reference simulation of each mix is shared by every predictor.
    """
    if not predictors:
        raise ValueError("at least one predictor spec is required")
    machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
    mixes = setup.mixes(num_cores, num_mixes, seed=seed)
    pairs = [(mix, machine) for mix in mixes]
    evaluated = setup.evaluate_predictors(pairs, predictors)
    primary = next(iter(evaluated))
    return StressResult(
        num_cores=num_cores,
        llc_config=llc_config,
        evaluations=evaluated[primary],
        worst_k=worst_k,
        predictor=primary,
        by_predictor=evaluated,
    )


# ---------------------------------------------------------------------------
# Figure 6: the worst-mix case study
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CaseStudyProgram:
    """One bar group of Figure 6."""

    name: str
    isolated_cpi: float
    measured_multi_core_cpi: float
    predicted_multi_core_cpi: float

    @property
    def measured_slowdown(self) -> float:
        return self.measured_multi_core_cpi / self.isolated_cpi

    @property
    def predicted_slowdown(self) -> float:
        return self.predicted_multi_core_cpi / self.isolated_cpi


@dataclass(frozen=True)
class CaseStudyResult:
    """Figure 6: per-program CPIs of one (worst-case) workload mix."""

    mix: WorkloadMix
    programs: List[CaseStudyProgram]

    def program(self, name: str) -> CaseStudyProgram:
        for program in self.programs:
            if program.name == name:
                return program
        raise KeyError(f"no program named {name!r} in the case study")

    def to_rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "program": program.name,
                "isolated_CPI": program.isolated_cpi,
                "measured_multicore_CPI": program.measured_multi_core_cpi,
                "predicted_multicore_CPI": program.predicted_multi_core_cpi,
                "measured_slowdown": program.measured_slowdown,
                "predicted_slowdown": program.predicted_slowdown,
            }
            for program in self.programs
        ]

    def render(self) -> str:
        return format_table(
            self.to_rows(),
            title=(
                f"Figure 6 — per-program CPI for the worst-STP mix ({self.mix.label()}); "
                "the paper's example is 2x gamess + hmmer + soplex with gamess slowed >2x:"
            ),
        )


def worst_mix_case_study(
    setup: ExperimentSetup,
    mix: Optional[WorkloadMix] = None,
    num_cores: int = 4,
    llc_config: int = 1,
) -> CaseStudyResult:
    """Build the Figure 6 report.

    When ``mix`` is omitted, the paper's own worst-case example
    (two copies of gamess with hmmer and soplex) is used.
    """
    if mix is None:
        mix = WorkloadMix(programs=("gamess", "gamess", "hmmer", "soplex"))
    machine = setup.machine(num_cores=max(num_cores, mix.num_programs), llc_config=llc_config)
    prediction = setup.predict(mix, machine)
    measurement = setup.simulate(mix, machine)

    programs = []
    for predicted, measured in zip(prediction.programs, measurement.programs):
        programs.append(
            CaseStudyProgram(
                name=predicted.name,
                isolated_cpi=predicted.single_core_cpi,
                measured_multi_core_cpi=measured.cpi,
                predicted_multi_core_cpi=predicted.predicted_cpi,
            )
        )
    return CaseStudyResult(mix=mix, programs=programs)


# ---------------------------------------------------------------------------
# Section 6: which benchmarks are sensitive to cache sharing?
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchmarkSensitivity:
    """Maximum (and mean) slowdown of each benchmark across evaluated mixes."""

    rows: List[Mapping[str, object]]

    def to_rows(self) -> List[Mapping[str, object]]:
        return list(self.rows)

    def most_sensitive(self) -> str:
        return str(self.rows[0]["benchmark"]) if self.rows else ""

    def max_slowdown(self, benchmark: str) -> float:
        for row in self.rows:
            if row["benchmark"] == benchmark:
                return float(row["max_slowdown"])
        raise KeyError(f"no sensitivity entry for {benchmark!r}")

    def render(self) -> str:
        return format_table(
            self.rows,
            columns=["benchmark", "max_slowdown", "mean_slowdown", "appearances"],
            title=(
                "Section 6 — per-benchmark sensitivity to cache sharing across the evaluated "
                "mixes (paper: gamess ~2.2x, gobmk ~1.3x, soplex/omnetpp/h264/xalan ~1.2x):"
            ),
        )


def benchmark_sensitivity(
    evaluations: Sequence[MixEvaluation], use_measured: bool = True
) -> BenchmarkSensitivity:
    """Aggregate per-benchmark slowdowns over a set of evaluated mixes."""
    slowdowns: Dict[str, List[float]] = {}
    for evaluation in evaluations:
        source = evaluation.measured if use_measured else evaluation.predicted
        for program in source.programs:
            slowdowns.setdefault(program.name, []).append(program.slowdown)
    rows = [
        {
            "benchmark": name,
            "max_slowdown": float(np.max(values)),
            "mean_slowdown": float(np.mean(values)),
            "appearances": len(values),
        }
        for name, values in slowdowns.items()
    ]
    rows.sort(key=lambda row: row["max_slowdown"], reverse=True)
    return BenchmarkSensitivity(rows=rows)
