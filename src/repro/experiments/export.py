"""Exporting experiment results to CSV/JSON for external plotting.

The repository deliberately has no plotting dependency; every result
object exposes ``to_rows()`` (tables) or explicit series accessors, and
this module turns those into CSV or JSON files that any plotting tool
can consume to redraw the paper's figures.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

Value = Union[str, int, float, bool]


class ExportError(ValueError):
    """Raised for invalid export requests."""


def rows_to_csv(rows: Sequence[Mapping[str, Value]], path: Union[str, Path]) -> Path:
    """Write a list of row dictionaries to ``path`` as CSV.

    The column set is the union of all row keys, ordered by first
    appearance, so rows with missing entries are handled gracefully.
    """
    if not rows:
        raise ExportError("cannot export an empty row list")
    path = Path(path)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def series_to_csv(
    series: Mapping[str, Sequence[float]], path: Union[str, Path], index_name: str = "index"
) -> Path:
    """Write one or more equal-length numeric series as CSV columns.

    This is the natural export for the paper's curve figures (e.g.
    Figure 9's measured/predicted sorted-STP curves).
    """
    if not series:
        raise ExportError("cannot export an empty series mapping")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ExportError(f"all series must have the same length, got lengths {sorted(lengths)}")
    (length,) = lengths
    if length == 0:
        raise ExportError("series must contain at least one point")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_name, *series.keys()])
        for index in range(length):
            writer.writerow([index, *(values[index] for values in series.values())])
    return path


def rows_to_json(rows: Sequence[Mapping[str, Value]], path: Union[str, Path]) -> Path:
    """Write a list of row dictionaries to ``path`` as a JSON array."""
    if not rows:
        raise ExportError("cannot export an empty row list")
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump([dict(row) for row in rows], handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def export_result(result, directory: Union[str, Path], stem: str) -> List[Path]:
    """Export any result object that implements ``to_rows()``.

    Writes both ``<stem>.csv`` and ``<stem>.json`` into ``directory``
    and returns the created paths.
    """
    if not hasattr(result, "to_rows"):
        raise ExportError(f"{type(result).__name__} does not implement to_rows()")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows = result.to_rows()
    return [
        rows_to_csv(rows, directory / f"{stem}.csv"),
        rows_to_json(rows, directory / f"{stem}.json"),
    ]
