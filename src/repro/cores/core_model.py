"""Additive out-of-order core timing model.

The model charges every dynamic instruction its benchmark-specific base
CPI (which absorbs the pipeline width, dependences and L1 hits — the
paper's cores hide L1 hits completely) and adds, per memory access, an
*exposed* latency that depends on which level of the hierarchy served
it:

* L1 hit — fully hidden by the out-of-order core (0 exposed cycles),
* L2 / LLC hit — the level's access latency divided by the benchmark's
  memory-level parallelism (MLP) factor,
* LLC miss — the main-memory latency divided by the MLP factor.

Dividing by the MLP factor models that an out-of-order core overlaps
independent long-latency accesses; the paper's model makes the same
assumption implicitly when it carries the single-core *average* LLC
miss penalty over to multi-core execution.  Crucially, the same timing
model is used for single-core profiling, for the detailed multi-core
reference simulation and (through the profile) by MPPM, so the three
are mutually consistent — exactly the relationship CMP$im and MPPM have
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machine import MachineConfig
from repro.workloads.benchmark import BenchmarkSpec


@dataclass(frozen=True)
class AccessPenalties:
    """Exposed cycles per access for one benchmark on one machine."""

    private_levels: tuple  # exposed cycles for a hit in each private level
    llc_hit: float
    memory: float


class CoreTimingModel:
    """Computes exposed access penalties and aggregates cycles.

    Parameters
    ----------
    machine:
        The machine configuration (latencies are read from it).
    spec:
        The benchmark running on the core (its MLP factor discounts all
        latencies beyond the L1).
    """

    def __init__(self, machine: MachineConfig, spec: BenchmarkSpec) -> None:
        self.machine = machine
        self.spec = spec
        mlp = spec.mlp
        private = []
        for index, level in enumerate(machine.private_levels):
            if index == 0:
                # L1 hits are hidden in the base CPI.
                private.append(0.0)
            else:
                private.append(level.latency / mlp)
        self._penalties = AccessPenalties(
            private_levels=tuple(private),
            llc_hit=machine.llc.latency / mlp,
            memory=machine.memory.latency / mlp,
        )

    @property
    def penalties(self) -> AccessPenalties:
        return self._penalties

    def private_hit_penalty(self, level_index: int) -> float:
        """Exposed cycles for a hit in private level ``level_index`` (0 = L1)."""
        return self._penalties.private_levels[level_index]

    @property
    def llc_hit_penalty(self) -> float:
        """Exposed cycles for a hit in the shared last-level cache."""
        return self._penalties.llc_hit

    @property
    def memory_penalty(self) -> float:
        """Exposed cycles for an LLC miss (access to main memory)."""
        return self._penalties.memory

    @property
    def llc_miss_extra_penalty(self) -> float:
        """Extra exposed cycles when an LLC hit turns into a miss.

        This is the quantity cache contention costs: an access that
        would have been served by the LLC now goes to memory instead.
        """
        return self._penalties.memory - self._penalties.llc_hit

    def base_cycles(self, instructions: float, cpi_multiplier: float = 1.0) -> float:
        """Non-memory cycles for ``instructions`` dynamic instructions."""
        if instructions < 0:
            raise ValueError(f"instructions must be non-negative, got {instructions}")
        return instructions * self.spec.base_cpi * cpi_multiplier

    def describe(self) -> str:
        """One-line summary of the exposed penalties."""
        privates = ", ".join(
            f"{level.name}={penalty:.1f}"
            for level, penalty in zip(self.machine.private_levels, self._penalties.private_levels)
        )
        return (
            f"{self.spec.name} on {self.machine.name}: {privates}, "
            f"LLC hit={self._penalties.llc_hit:.1f}, memory={self._penalties.memory:.1f} "
            f"exposed cycles per access (MLP {self.spec.mlp:.1f})"
        )
