"""CPI-stack accounting.

The paper computes the *memory CPI* — the fraction of the single-core
CPI spent waiting for memory — using the counter architecture of
Eyerman et al. (ASPLOS 2006) or a perfect-LLC simulation run.  Our
simulator tracks the equivalent information directly: every cycle it
adds is attributed to exactly one CPI-stack component, so the memory
CPI falls out of the accounting without a second run (though the
profiler also supports the two-run method for cross-validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CPIStack:
    """Cycle counts split by what the core was doing.

    Components
    ----------
    base:
        Cycles spent computing (including L1 hits, which the 4-wide
        out-of-order core hides completely).
    private_cache:
        Exposed cycles of hits in the private L2.
    llc:
        Exposed cycles of hits in the shared last-level cache.
    memory:
        Exposed cycles of LLC misses (accesses to main memory) — the
        paper's "memory CPI" numerator.
    """

    base: float = 0.0
    private_cache: float = 0.0
    llc: float = 0.0
    memory: float = 0.0
    instructions: int = 0

    def add_base(self, cycles: float) -> None:
        self.base += cycles

    def add_private_cache(self, cycles: float) -> None:
        self.private_cache += cycles

    def add_llc(self, cycles: float) -> None:
        self.llc += cycles

    def add_memory(self, cycles: float) -> None:
        self.memory += cycles

    def add_instructions(self, count: int) -> None:
        self.instructions += count

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return self.base + self.private_cache + self.llc + self.memory

    @property
    def cpi(self) -> float:
        """Total CPI (0 when no instructions were recorded)."""
        return self.total_cycles / self.instructions if self.instructions else 0.0

    @property
    def memory_cpi(self) -> float:
        """The memory component of the CPI (cycles waiting for memory per instruction)."""
        return self.memory / self.instructions if self.instructions else 0.0

    @property
    def memory_fraction(self) -> float:
        """Memory cycles as a fraction of all cycles."""
        total = self.total_cycles
        return self.memory / total if total else 0.0

    def components(self) -> Dict[str, float]:
        """All components as a name → cycles dictionary."""
        return {
            "base": self.base,
            "private_cache": self.private_cache,
            "llc": self.llc,
            "memory": self.memory,
        }

    def merged_with(self, other: "CPIStack") -> "CPIStack":
        """Element-wise sum of two stacks (e.g. across intervals)."""
        return CPIStack(
            base=self.base + other.base,
            private_cache=self.private_cache + other.private_cache,
            llc=self.llc + other.llc,
            memory=self.memory + other.memory,
            instructions=self.instructions + other.instructions,
        )

    def copy(self) -> "CPIStack":
        return CPIStack(
            base=self.base,
            private_cache=self.private_cache,
            llc=self.llc,
            memory=self.memory,
            instructions=self.instructions,
        )
