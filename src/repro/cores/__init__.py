"""Core timing model and CPI-stack accounting.

MPPM never looks inside the core: it consumes the single-core CPI and
the memory CPI (the paper obtains the latter either from the CPI-stack
counter architecture of Eyerman et al. or from a perfect-LLC run).
This package supplies the additive core timing model used by both the
detailed simulators and the profiler, and the :class:`CPIStack`
accounting object that splits cycles into base / private-cache /
LLC-hit / memory components.
"""

from repro.cores.cpi_stack import CPIStack
from repro.cores.core_model import CoreTimingModel

__all__ = ["CPIStack", "CoreTimingModel"]
