"""Synthetic multi-program workloads.

The paper evaluates MPPM on SPEC CPU2006 (29 benchmarks, 1B-instruction
SimPoints traced with Pin).  That artefact is proprietary, so this
package provides the substitution described in DESIGN.md: a suite of 29
named *synthetic* benchmarks, each defined by a :class:`BenchmarkSpec`
that parameterises an LRU-stack-model address-stream generator
(temporal-reuse profile, working-set size, streaming fraction,
memory-reference rate, base CPI, memory-level parallelism and
per-phase parameter drift).

The package also contains everything the paper needs around the suite:

* :mod:`repro.workloads.generator` — deterministic trace generation,
* :mod:`repro.workloads.trace` — the in-memory trace representation,
* :mod:`repro.workloads.classification` — MEM / COMP / MIX benchmark
  classes used by the "current practice" category sampling,
* :mod:`repro.workloads.mixes` — enumeration, counting and sampling of
  multi-program workload mixes (combinations with repetition).
"""

from repro.workloads.benchmark import BenchmarkSpec, PhaseSpec, ReuseProfile
from repro.workloads.suite import (
    BenchmarkSuite,
    spec_cpu2006_like_suite,
    small_suite,
)
from repro.workloads.trace import MemoryTrace
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.classification import (
    BenchmarkClass,
    classify_benchmark,
    classify_suite,
)
from repro.workloads.mixes import (
    WorkloadMix,
    count_mixes,
    enumerate_mixes,
    sample_mixes,
    sample_category_mixes,
)

__all__ = [
    "BenchmarkSpec",
    "PhaseSpec",
    "ReuseProfile",
    "BenchmarkSuite",
    "spec_cpu2006_like_suite",
    "small_suite",
    "MemoryTrace",
    "TraceGenerator",
    "generate_trace",
    "BenchmarkClass",
    "classify_benchmark",
    "classify_suite",
    "WorkloadMix",
    "count_mixes",
    "enumerate_mixes",
    "sample_mixes",
    "sample_category_mixes",
]
