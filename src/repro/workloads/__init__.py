"""Synthetic multi-program workloads.

The paper evaluates MPPM on SPEC CPU2006 (29 benchmarks, 1B-instruction
SimPoints traced with Pin).  That artefact is proprietary, so this
package provides the substitution described in DESIGN.md: a suite of 29
named *synthetic* benchmarks, each defined by a :class:`BenchmarkSpec`
that parameterises an LRU-stack-model address-stream generator
(temporal-reuse profile, working-set size, streaming fraction,
memory-reference rate, base CPI, memory-level parallelism and
per-phase parameter drift).

Workloads are first-class registry objects: :func:`make_workload`
resolves a spec string (``"suite:spec29"``, ``"suite:spec29/scaled@8"``,
``"random:n=8,seed=0"``, ``"service:n=8,seed=0"``) into a
:class:`WorkloadSource` that supplies the suite and samples mixes —
the workload-side mirror of :func:`repro.predictors.make_predictor`.

The package also contains everything the paper needs around the suite:

* :mod:`repro.workloads.registry` — the Workload API (spec strings,
  :class:`WorkloadSource`, :func:`make_workload`),
* :mod:`repro.workloads.families` — parametric synthetic families
  (``random:*`` over the ReuseProfile space, microservice-like
  ``service:*``),
* :mod:`repro.workloads.generator` — deterministic trace generation
  (vectorized, with a bit-identical ``"reference"`` kernel),
* :mod:`repro.workloads.trace` — the in-memory trace representation,
* :mod:`repro.workloads.classification` — MEM / COMP / MIX benchmark
  classes used by the "current practice" category sampling,
* :mod:`repro.workloads.mixes` — enumeration, counting and sampling of
  multi-program workload mixes (combinations with repetition).
"""

from repro.workloads.benchmark import BenchmarkSpec, PhaseSpec, ReuseProfile
from repro.workloads.suite import (
    BenchmarkSuite,
    spec_cpu2006_like_suite,
    small_suite,
)
from repro.workloads.trace import MemoryTrace
from repro.workloads.generator import GENERATOR_KERNELS, TraceGenerator, generate_trace
from repro.workloads.families import (
    random_benchmark,
    random_suite,
    service_benchmark,
    service_suite,
)
from repro.workloads.registry import (
    DEFAULT_WORKLOAD,
    MixCategory,
    RegisteredWorkload,
    WorkloadSource,
    WorkloadSpecError,
    available_workloads,
    canonical_workload_spec,
    describe_workloads,
    make_workload,
    resolve_categories,
    workload_for,
)
from repro.workloads.classification import (
    BenchmarkClass,
    classify_benchmark,
    classify_suite,
)
from repro.workloads.mixes import (
    WorkloadMix,
    count_mixes,
    enumerate_mixes,
    sample_mixes,
    sample_category_mixes,
)

__all__ = [
    "BenchmarkSpec",
    "PhaseSpec",
    "ReuseProfile",
    "BenchmarkSuite",
    "spec_cpu2006_like_suite",
    "small_suite",
    "MemoryTrace",
    "GENERATOR_KERNELS",
    "TraceGenerator",
    "generate_trace",
    "random_benchmark",
    "random_suite",
    "service_benchmark",
    "service_suite",
    "DEFAULT_WORKLOAD",
    "MixCategory",
    "RegisteredWorkload",
    "WorkloadSource",
    "WorkloadSpecError",
    "available_workloads",
    "canonical_workload_spec",
    "describe_workloads",
    "make_workload",
    "resolve_categories",
    "workload_for",
    "BenchmarkClass",
    "classify_benchmark",
    "classify_suite",
    "WorkloadMix",
    "count_mixes",
    "enumerate_mixes",
    "sample_mixes",
    "sample_category_mixes",
]
