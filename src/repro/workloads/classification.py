"""Benchmark classification into MEM / COMP / MIX classes.

Section 5 of the paper describes "current practice": architects often
classify benchmarks into memory-intensive and compute-intensive
classes and then randomly pick multi-program mixes from those classes
(e.g. 4 memory-intensive mixes, 4 compute-intensive mixes, 4 mixed
mixes).  This module provides that classification.

Two classifiers are available:

* :func:`classify_benchmark` works from the benchmark *specification*
  (no simulation needed): it estimates the fraction of instructions
  expected to access beyond the private caches.
* :func:`classify_from_profile` works from a measured single-core
  profile using the memory-CPI fraction, which is how an architect with
  simulation data would do it.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Mapping

from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.suite import BenchmarkSuite


class BenchmarkClass(str, Enum):
    """Workload class used for category-based mix selection."""

    MEM = "MEM"
    COMP = "COMP"
    MIX = "MIX"


#: Default boundary (in lines) between "fits the private caches" and
#: "spills to the shared LLC / memory", tuned to the default experiment
#: scale where the private L2 holds 256 lines.
DEFAULT_PRIVATE_LINES = 256


def memory_intensity(spec: BenchmarkSpec, private_lines: int = DEFAULT_PRIVATE_LINES) -> float:
    """Expected off-private-cache accesses per instruction.

    For each reuse bucket that (partially) extends beyond the private
    cache capacity, the corresponding probability mass is counted as
    off-chip traffic; brand-new lines always count.  The result is the
    per-instruction rate of accesses expected to reach the shared LLC
    or memory — a cheap proxy for memory intensity.
    """
    beyond = spec.reuse.new_probability
    for low, high, probability in spec.reuse.probabilities():
        if high <= private_lines:
            continue
        if low >= private_lines:
            beyond += probability
        else:
            # The bucket straddles the boundary: count the fraction of
            # its (uniform) depth range that lies beyond it.
            beyond += probability * (high - private_lines) / (high - low)
    return beyond * spec.mem_ref_fraction


def classify_benchmark(
    spec: BenchmarkSpec,
    mem_threshold: float = 0.012,
    comp_threshold: float = 0.004,
    private_lines: int = DEFAULT_PRIVATE_LINES,
) -> BenchmarkClass:
    """Classify one benchmark from its specification.

    Benchmarks whose expected off-private-cache access rate exceeds
    ``mem_threshold`` are MEM; below ``comp_threshold`` they are COMP;
    in between they are MIX.
    """
    intensity = memory_intensity(spec, private_lines=private_lines)
    if intensity >= mem_threshold:
        return BenchmarkClass.MEM
    if intensity <= comp_threshold:
        return BenchmarkClass.COMP
    return BenchmarkClass.MIX


def classify_suite(
    suite: BenchmarkSuite,
    mem_threshold: float = 0.012,
    comp_threshold: float = 0.004,
) -> Dict[str, BenchmarkClass]:
    """Classify every benchmark of a suite; returns name → class."""
    return {
        spec.name: classify_benchmark(
            spec, mem_threshold=mem_threshold, comp_threshold=comp_threshold
        )
        for spec in suite
    }


def classify_from_profile(
    memory_cpi_fraction: float,
    mem_threshold: float = 0.35,
    comp_threshold: float = 0.12,
) -> BenchmarkClass:
    """Classify a benchmark from its measured memory-CPI fraction.

    ``memory_cpi_fraction`` is memory CPI divided by total single-core
    CPI (how much of the program's time is spent waiting for memory).
    """
    if not 0 <= memory_cpi_fraction <= 1:
        raise ValueError(
            f"memory_cpi_fraction must be within [0, 1], got {memory_cpi_fraction}"
        )
    if memory_cpi_fraction >= mem_threshold:
        return BenchmarkClass.MEM
    if memory_cpi_fraction <= comp_threshold:
        return BenchmarkClass.COMP
    return BenchmarkClass.MIX


def group_by_class(classification: Mapping[str, BenchmarkClass]) -> Dict[BenchmarkClass, List[str]]:
    """Invert a name → class mapping into class → sorted list of names."""
    groups: Dict[BenchmarkClass, List[str]] = {cls: [] for cls in BenchmarkClass}
    for name, cls in classification.items():
        groups[cls].append(name)
    for names in groups.values():
        names.sort()
    return groups


def class_counts(classification: Mapping[str, BenchmarkClass]) -> Dict[BenchmarkClass, int]:
    """Number of benchmarks per class."""
    return {cls: len(names) for cls, names in group_by_class(classification).items()}


def ensure_all_classes_present(classification: Mapping[str, BenchmarkClass]) -> None:
    """Raise if any class is empty (category sampling would then fail)."""
    empty = [cls.value for cls, count in class_counts(classification).items() if count == 0]
    if empty:
        raise ValueError(f"benchmark classification has empty classes: {empty}")
