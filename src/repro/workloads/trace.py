"""In-memory representation of a benchmark's execution trace.

The detailed simulators in :mod:`repro.simulators` are *trace driven*:
they replay a :class:`MemoryTrace`, which records every memory access
(cache-line address plus the dynamic instruction index at which it
occurs) and the number of non-memory core cycles accumulated between
consecutive accesses.  Traces are produced deterministically by
:mod:`repro.workloads.generator` from a :class:`BenchmarkSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.workloads.benchmark import BenchmarkSpec, WorkloadError


@dataclass(frozen=True)
class MemoryTrace:
    """A benchmark's memory-access trace.

    Attributes
    ----------
    spec:
        The benchmark specification the trace was generated from.
    num_instructions:
        Total number of dynamic instructions in the trace.
    access_insn:
        For each memory access, the (0-based) dynamic instruction index
        at which it occurs; non-decreasing, shape ``(num_accesses,)``.
    access_line:
        For each memory access, the cache-line address (an opaque
        integer; different benchmarks use disjoint address spaces).
    base_cycle_gap:
        For each memory access, the number of non-memory core cycles
        accumulated since the previous access (or since the start of
        the trace for the first access).  The core timing model adds
        cache/memory latencies on top of these.
    tail_base_cycles:
        Non-memory cycles accumulated after the last memory access up
        to the end of the trace.
    """

    spec: BenchmarkSpec
    num_instructions: int
    access_insn: np.ndarray
    access_line: np.ndarray
    base_cycle_gap: np.ndarray
    tail_base_cycles: float

    def __post_init__(self) -> None:
        n = len(self.access_insn)
        if len(self.access_line) != n or len(self.base_cycle_gap) != n:
            raise WorkloadError("trace arrays must all have the same length")
        if self.num_instructions <= 0:
            raise WorkloadError("a trace must contain at least one instruction")
        if n == 0:
            raise WorkloadError("a trace must contain at least one memory access")
        if self.tail_base_cycles < 0:
            raise WorkloadError("tail_base_cycles must be non-negative")

    @property
    def name(self) -> str:
        """The benchmark's name."""
        return self.spec.name

    @property
    def num_accesses(self) -> int:
        """Number of memory accesses in the trace."""
        return len(self.access_insn)

    @property
    def memory_access_rate(self) -> float:
        """Memory accesses per instruction."""
        return self.num_accesses / self.num_instructions

    @property
    def total_base_cycles(self) -> float:
        """Total non-memory core cycles over the whole trace."""
        return float(self.base_cycle_gap.sum()) + self.tail_base_cycles

    @cached_property
    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched by the trace.

        Computed once per trace: ``cached_property`` writes straight to
        the instance ``__dict__``, which works on this frozen dataclass
        (it bypasses the blocked ``__setattr__``), so repeated reads —
        classifiers and reports probe this per benchmark — skip the
        ``np.unique`` pass over the whole access stream.
        """
        return int(np.unique(self.access_line).size)

    def interval_slices(self, interval_instructions: int) -> list:
        """Split the trace into per-interval access slices.

        Returns a list of ``(start, stop)`` access-index pairs, one per
        interval of ``interval_instructions`` dynamic instructions.
        The last interval may be shorter.  Used by the single-core
        profiler, which measures CPI / memory CPI / SDCs per interval
        (the paper uses 20M-instruction intervals).
        """
        if interval_instructions <= 0:
            raise WorkloadError("interval_instructions must be positive")
        boundaries = np.arange(
            interval_instructions, self.num_instructions + interval_instructions, interval_instructions
        )
        boundaries[-1] = self.num_instructions
        slices = []
        start = 0
        for boundary in boundaries:
            stop = int(np.searchsorted(self.access_insn, boundary, side="left"))
            slices.append((start, stop))
            start = stop
        return slices

    def describe(self) -> str:
        """One-line summary used in reports and logs."""
        return (
            f"{self.name}: {self.num_instructions} instructions, "
            f"{self.num_accesses} memory accesses "
            f"({self.memory_access_rate:.1%}), footprint {self.footprint_lines} lines"
        )
