"""Deterministic synthetic trace generation.

The generator implements an *LRU-stack model*: the benchmark maintains
a private stack of the cache lines it has touched, most recently used
first.  Each memory access either reuses the line at a randomly drawn
stack depth (drawn from the benchmark's :class:`ReuseProfile`) or
touches a brand-new line.  Once the benchmark's working set is
exhausted, "new" accesses cycle back over the least-recently-used lines,
which turns streaming behaviour into capacity behaviour.

Because the reuse-depth distribution directly controls the trace's
stack-distance profile, this generator lets the suite dial in exactly
the cache behaviours the paper relies on: cache-friendly compute
programs, LLC-sensitive programs (the ``gamess`` role), and streaming
memory-intensive programs — including time-varying phases.

Everything is driven by :class:`numpy.random.Generator` seeded from the
benchmark's ``seed``, so traces are bit-for-bit reproducible.

Two generation kernels are available through the same API, mirroring
the single-core replay kernels of :mod:`repro.simulators.single_core`:

* ``"vectorized"`` (default) — reuse depths, access positions and
  base-cycle gaps are drawn and resolved as whole numpy arrays; the
  only irreducibly sequential step, resolving LRU-stack depths to line
  addresses (the inverse of the stack-distance transform, i.e. a
  move-to-front decode), runs as a tight bottom-anchored list kernel
  whose per-access cost is O(reuse depth) instead of the reference
  loop's O(footprint) front-insertion memmove plus per-access numpy
  scalar arithmetic.
* ``"reference"`` — the original per-access loop, kept as ground
  truth.

The two kernels are **bit-identical** (asserted by the equivalence
suite and guarded by ``benchmarks/bench_trace_generation.py``), so the
choice never changes a trace, a profile or any downstream result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.workloads.benchmark import BenchmarkSpec, WorkloadError
from repro.workloads.trace import MemoryTrace


#: Generation kernels selectable through ``TraceGenerator(kernel=...)``.
GENERATOR_KERNELS = ("vectorized", "reference")

#: Large odd multiplier used to give every benchmark a disjoint,
#: set-index-scrambled address space in the shared cache.
_ADDRESS_SPACE_STRIDE = 1 << 40


def _name_digest(name: str) -> int:
    """A deterministic 32-bit digest of a benchmark name.

    Python's built-in ``hash`` is randomised per process, which would
    make traces differ from run to run; this digest is stable.
    """
    digest = 0
    for char in name:
        digest = (digest * 131 + ord(char)) & 0xFFFFFFFF
    return digest


def _benchmark_address_base(name: str) -> int:
    """A stable per-benchmark base address (disjoint across benchmarks)."""
    # Keep the base well inside the int64 range used by the trace arrays.
    return (_name_digest(name) % 100_003 + 1) * _ADDRESS_SPACE_STRIDE


@dataclass(frozen=True)
class _PhasePlan:
    """Resolved parameters of one phase for a concrete trace length."""

    start_insn: int
    end_insn: int
    num_accesses: int
    base_cpi: float
    bucket_bounds: tuple
    bucket_probs: np.ndarray
    new_prob: float

    @property
    def num_instructions(self) -> int:
        return self.end_insn - self.start_insn


class TraceGenerator:
    """Generates :class:`MemoryTrace` objects from benchmark specs.

    Parameters
    ----------
    num_instructions:
        Trace length in dynamic instructions.  The default of 200,000
        stands in for the paper's 1B-instruction SimPoints (DESIGN.md
        explains the 1:5000 scale).
    seed:
        Global seed combined with each benchmark's own seed, so that a
        whole suite can be re-generated under a different seed for
        sensitivity studies.
    kernel:
        Generation kernel: ``"vectorized"`` (default) or
        ``"reference"``.  Both produce bit-identical traces; the
        reference loop is kept as ground truth.
    """

    def __init__(
        self, num_instructions: int = 200_000, seed: int = 0, kernel: str = "vectorized"
    ) -> None:
        if num_instructions <= 0:
            raise WorkloadError("num_instructions must be positive")
        if kernel not in GENERATOR_KERNELS:
            raise WorkloadError(
                f"kernel must be one of {GENERATOR_KERNELS}, got {kernel!r}"
            )
        self.num_instructions = num_instructions
        self.seed = seed
        self.kernel = kernel

    def generate(self, spec: BenchmarkSpec, kernel: Optional[str] = None) -> MemoryTrace:
        """Generate the trace for one benchmark.

        ``kernel`` overrides the generator's default for this one call
        (used by the equivalence tests and the benchmark guard).
        """
        kernel = self.kernel if kernel is None else kernel
        if kernel not in GENERATOR_KERNELS:
            raise WorkloadError(
                f"kernel must be one of {GENERATOR_KERNELS}, got {kernel!r}"
            )
        rng = np.random.default_rng((self.seed, spec.seed, _name_digest(spec.name)))
        plans = self._plan_phases(spec)
        # Draw every phase's access positions and reuse depths up front,
        # in phase order — both kernels consume the exact same random
        # stream, so the drawn arrays (and thus the traces) are shared.
        phase_data: List[Tuple[_PhasePlan, np.ndarray, np.ndarray]] = [
            (plan, self._access_positions(plan), self._draw_depths(plan, rng))
            for plan in plans
            if plan.num_accesses > 0
        ]
        if not phase_data:
            raise WorkloadError(f"{spec.name}: generated trace contains no memory accesses")
        if kernel == "reference":
            return self._assemble_reference(spec, phase_data)
        return self._assemble_vectorized(spec, phase_data)

    # ------------------------------------------------------------------
    # Reference kernel: the original per-access loop (ground truth)
    # ------------------------------------------------------------------

    def _assemble_reference(self, spec: BenchmarkSpec, phase_data) -> MemoryTrace:
        address_base = _benchmark_address_base(spec.name)

        access_insn_parts = []
        access_line_parts = []
        gap_parts = []

        # The LRU stack of touched lines (most recent first) persists
        # across phases, as it would in a real program.
        stack: list = []
        next_new_line = 0
        last_insn = -1
        last_phase_cpi = spec.base_cpi

        for plan, insn_idx, depths in phase_data:
            lines = np.empty(plan.num_accesses, dtype=np.int64)

            for i, depth in enumerate(depths):
                if depth < 0 or depth > len(stack):
                    # Brand-new line (or a reuse deeper than the current
                    # footprint, which degenerates to a new line).
                    if next_new_line < spec.working_set_lines:
                        line = next_new_line
                        next_new_line += 1
                        stack.insert(0, line)
                    else:
                        # Working set exhausted: cycle over the LRU end.
                        line = stack[-1]
                        del stack[-1]
                        stack.insert(0, line)
                else:
                    # Reuse the line at 1-based stack depth ``depth``.
                    line = stack[depth - 1]
                    del stack[depth - 1]
                    stack.insert(0, line)
                lines[i] = line

            gaps = np.empty(plan.num_accesses, dtype=np.float64)
            prev = last_insn
            for i, insn in enumerate(insn_idx):
                gaps[i] = (insn - prev) * plan.base_cpi
                prev = insn
            last_insn = int(insn_idx[-1])
            last_phase_cpi = plan.base_cpi

            access_insn_parts.append(insn_idx)
            access_line_parts.append(lines + address_base)
            gap_parts.append(gaps)

        access_insn = np.concatenate(access_insn_parts)
        access_line = np.concatenate(access_line_parts)
        base_cycle_gap = np.concatenate(gap_parts)
        tail = (self.num_instructions - 1 - last_insn) * last_phase_cpi

        return MemoryTrace(
            spec=spec,
            num_instructions=self.num_instructions,
            access_insn=access_insn,
            access_line=access_line,
            base_cycle_gap=base_cycle_gap,
            tail_base_cycles=float(max(tail, 0.0)),
        )

    # ------------------------------------------------------------------
    # Vectorized kernel
    # ------------------------------------------------------------------

    def _assemble_vectorized(self, spec: BenchmarkSpec, phase_data) -> MemoryTrace:
        address_base = _benchmark_address_base(spec.name)

        gap_parts = []
        last_insn = -1
        for plan, insn_idx, _ in phase_data:
            # Gaps are a pure array expression: (insn - previous insn)
            # times the phase CPI, with the previous phase's final
            # access (or -1) in front.  int64 differences converted to
            # float64 and multiplied once match the reference's scalar
            # arithmetic bit-for-bit.
            gaps = np.diff(insn_idx, prepend=last_insn) * plan.base_cpi
            gap_parts.append(gaps)
            last_insn = int(insn_idx[-1])
        last_phase_cpi = phase_data[-1][0].base_cpi

        depths_all = np.concatenate([depths for _, _, depths in phase_data])
        lines = _resolve_depths_to_lines(depths_all, spec.working_set_lines)

        access_insn = np.concatenate([insn_idx for _, insn_idx, _ in phase_data])
        base_cycle_gap = np.concatenate(gap_parts)
        tail = (self.num_instructions - 1 - last_insn) * last_phase_cpi

        return MemoryTrace(
            spec=spec,
            num_instructions=self.num_instructions,
            access_insn=access_insn,
            access_line=lines + address_base,
            base_cycle_gap=base_cycle_gap,
            tail_base_cycles=float(max(tail, 0.0)),
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _plan_phases(self, spec: BenchmarkSpec) -> list:
        """Resolve each phase of ``spec`` against the concrete trace length."""
        plans = []
        boundaries = spec.phase_boundaries(self.num_instructions)
        start = 0
        for phase, end in zip(spec.phases, boundaries):
            phase_insns = end - start
            if phase_insns <= 0:
                start = end
                continue
            mem_fraction = min(0.95, spec.mem_ref_fraction * phase.mem_fraction_multiplier)
            num_accesses = max(1, int(round(phase_insns * mem_fraction)))
            reuse = spec.reuse.scaled(
                depth_scale=phase.reuse_depth_multiplier,
                new_scale=phase.new_line_multiplier,
            )
            triples = reuse.probabilities()
            bucket_bounds = tuple((low, high) for low, high, _ in triples)
            bucket_probs = np.array([probability for _, _, probability in triples], dtype=np.float64)
            plans.append(
                _PhasePlan(
                    start_insn=start,
                    end_insn=end,
                    num_accesses=num_accesses,
                    base_cpi=spec.base_cpi * phase.cpi_multiplier,
                    bucket_bounds=bucket_bounds,
                    bucket_probs=bucket_probs,
                    new_prob=reuse.new_probability,
                )
            )
            start = end
        return plans

    @staticmethod
    def _access_positions(plan: _PhasePlan) -> np.ndarray:
        """Evenly spread access instruction indices across the phase."""
        positions = plan.start_insn + np.floor(
            (np.arange(plan.num_accesses) + 0.5) * plan.num_instructions / plan.num_accesses
        ).astype(np.int64)
        return np.minimum(positions, plan.end_insn - 1)

    @staticmethod
    def _draw_depths(plan: _PhasePlan, rng: np.random.Generator) -> np.ndarray:
        """Draw a reuse depth per access; -1 encodes a brand-new line."""
        n = plan.num_accesses
        depths = np.full(n, -1, dtype=np.int64)
        if len(plan.bucket_probs) == 0:
            return depths
        reuse_prob_total = float(plan.bucket_probs.sum())
        uniform = rng.random(n)
        is_reuse = uniform < reuse_prob_total
        num_reuse = int(is_reuse.sum())
        if num_reuse == 0:
            return depths
        # Choose a bucket per reusing access, then a uniform depth inside it.
        bucket_choice = rng.choice(
            len(plan.bucket_probs), size=num_reuse, p=plan.bucket_probs / reuse_prob_total
        )
        lows = np.array([low for low, _ in plan.bucket_bounds], dtype=np.int64)
        highs = np.array([high for _, high in plan.bucket_bounds], dtype=np.int64)
        chosen_low = lows[bucket_choice]
        chosen_high = highs[bucket_choice]
        reuse_depths = chosen_low + 1 + np.floor(
            rng.random(num_reuse) * (chosen_high - chosen_low)
        ).astype(np.int64)
        depths[is_reuse] = reuse_depths
        return depths


def _resolve_depths_to_lines(depths: np.ndarray, working_set_lines: int) -> np.ndarray:
    """Resolve LRU-stack reuse depths to line ids (move-to-front decode).

    This is the inverse of the stack-distance transform and — unlike
    the draws, positions and gaps around it — has an irreducible
    sequential core: the line selected at depth ``d`` depends on every
    preceding move-to-front.  The kernel keeps that core as small as
    possible:

    * the stack is stored bottom-first, so pushing the new MRU is an
      O(1) ``append`` and reusing depth ``d`` removes ``stack[-d]`` —
      an O(d) tail memmove.  The reference loop instead pays an
      O(footprint) front-insertion memmove on *every* access, which is
      quadratic for streaming working sets;
    * a reuse at depth 1 touches the line that is already on top, so it
      reads ``stack[-1]`` and mutates nothing;
    * depths arrive as one whole-trace int64 array (phase structure
      already folded in) and are converted to plain ints in a single C
      pass, eliminating the per-access numpy scalar arithmetic that
      dominates the reference loop on small working sets.

    Semantics are exactly the reference loop's: a negative depth or a
    depth beyond the current footprint is a brand-new line until the
    working set is exhausted, after which it recycles the LRU line.
    """
    out: list = []
    push = out.append
    stack: list = []  # bottom-first: stack[-1] is the MRU line
    append = stack.append
    born = 0  # lines created so far == current stack size
    for d in depths.tolist():
        if 1 <= d <= born:
            if d == 1:
                push(stack[-1])
                continue
            line = stack[-d]
            del stack[-d]
        elif born < working_set_lines:
            line = born
            born += 1
        else:
            # Working set exhausted: cycle over the LRU end.
            line = stack[0]
            del stack[0]
        append(line)
        push(line)
    return np.array(out, dtype=np.int64)


def generate_trace(
    spec: BenchmarkSpec,
    num_instructions: int = 200_000,
    seed: int = 0,
    kernel: str = "vectorized",
) -> MemoryTrace:
    """Convenience wrapper: generate one benchmark's trace."""
    return TraceGenerator(
        num_instructions=num_instructions, seed=seed, kernel=kernel
    ).generate(spec)
