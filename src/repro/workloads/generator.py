"""Deterministic synthetic trace generation.

The generator implements an *LRU-stack model*: the benchmark maintains
a private stack of the cache lines it has touched, most recently used
first.  Each memory access either reuses the line at a randomly drawn
stack depth (drawn from the benchmark's :class:`ReuseProfile`) or
touches a brand-new line.  Once the benchmark's working set is
exhausted, "new" accesses cycle back over the least-recently-used lines,
which turns streaming behaviour into capacity behaviour.

Because the reuse-depth distribution directly controls the trace's
stack-distance profile, this generator lets the suite dial in exactly
the cache behaviours the paper relies on: cache-friendly compute
programs, LLC-sensitive programs (the ``gamess`` role), and streaming
memory-intensive programs — including time-varying phases.

Everything is driven by :class:`numpy.random.Generator` seeded from the
benchmark's ``seed``, so traces are bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.benchmark import BenchmarkSpec, WorkloadError
from repro.workloads.trace import MemoryTrace


#: Large odd multiplier used to give every benchmark a disjoint,
#: set-index-scrambled address space in the shared cache.
_ADDRESS_SPACE_STRIDE = 1 << 40


def _name_digest(name: str) -> int:
    """A deterministic 32-bit digest of a benchmark name.

    Python's built-in ``hash`` is randomised per process, which would
    make traces differ from run to run; this digest is stable.
    """
    digest = 0
    for char in name:
        digest = (digest * 131 + ord(char)) & 0xFFFFFFFF
    return digest


def _benchmark_address_base(name: str) -> int:
    """A stable per-benchmark base address (disjoint across benchmarks)."""
    # Keep the base well inside the int64 range used by the trace arrays.
    return (_name_digest(name) % 100_003 + 1) * _ADDRESS_SPACE_STRIDE


@dataclass(frozen=True)
class _PhasePlan:
    """Resolved parameters of one phase for a concrete trace length."""

    start_insn: int
    end_insn: int
    num_accesses: int
    base_cpi: float
    bucket_bounds: tuple
    bucket_probs: np.ndarray
    new_prob: float

    @property
    def num_instructions(self) -> int:
        return self.end_insn - self.start_insn


class TraceGenerator:
    """Generates :class:`MemoryTrace` objects from benchmark specs.

    Parameters
    ----------
    num_instructions:
        Trace length in dynamic instructions.  The default of 200,000
        stands in for the paper's 1B-instruction SimPoints (DESIGN.md
        explains the 1:5000 scale).
    seed:
        Global seed combined with each benchmark's own seed, so that a
        whole suite can be re-generated under a different seed for
        sensitivity studies.
    """

    def __init__(self, num_instructions: int = 200_000, seed: int = 0) -> None:
        if num_instructions <= 0:
            raise WorkloadError("num_instructions must be positive")
        self.num_instructions = num_instructions
        self.seed = seed

    def generate(self, spec: BenchmarkSpec) -> MemoryTrace:
        """Generate the trace for one benchmark."""
        rng = np.random.default_rng((self.seed, spec.seed, _name_digest(spec.name)))
        plans = self._plan_phases(spec)
        address_base = _benchmark_address_base(spec.name)

        access_insn_parts = []
        access_line_parts = []
        gap_parts = []

        # The LRU stack of touched lines (most recent first) persists
        # across phases, as it would in a real program.
        stack: list = []
        next_new_line = 0
        last_insn = -1
        last_phase_cpi = spec.base_cpi

        for plan in plans:
            if plan.num_accesses == 0:
                continue
            insn_idx = self._access_positions(plan)
            depths = self._draw_depths(plan, rng)
            lines = np.empty(plan.num_accesses, dtype=np.int64)

            for i, depth in enumerate(depths):
                if depth < 0 or depth > len(stack):
                    # Brand-new line (or a reuse deeper than the current
                    # footprint, which degenerates to a new line).
                    if next_new_line < spec.working_set_lines:
                        line = next_new_line
                        next_new_line += 1
                        stack.insert(0, line)
                    else:
                        # Working set exhausted: cycle over the LRU end.
                        line = stack[-1]
                        del stack[-1]
                        stack.insert(0, line)
                else:
                    # Reuse the line at 1-based stack depth ``depth``.
                    line = stack[depth - 1]
                    del stack[depth - 1]
                    stack.insert(0, line)
                lines[i] = line

            gaps = np.empty(plan.num_accesses, dtype=np.float64)
            prev = last_insn
            for i, insn in enumerate(insn_idx):
                gaps[i] = (insn - prev) * plan.base_cpi
                prev = insn
            last_insn = int(insn_idx[-1])
            last_phase_cpi = plan.base_cpi

            access_insn_parts.append(insn_idx)
            access_line_parts.append(lines + address_base)
            gap_parts.append(gaps)

        if not access_insn_parts:
            raise WorkloadError(f"{spec.name}: generated trace contains no memory accesses")

        access_insn = np.concatenate(access_insn_parts)
        access_line = np.concatenate(access_line_parts)
        base_cycle_gap = np.concatenate(gap_parts)
        tail = (self.num_instructions - 1 - last_insn) * last_phase_cpi

        return MemoryTrace(
            spec=spec,
            num_instructions=self.num_instructions,
            access_insn=access_insn,
            access_line=access_line,
            base_cycle_gap=base_cycle_gap,
            tail_base_cycles=float(max(tail, 0.0)),
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _plan_phases(self, spec: BenchmarkSpec) -> list:
        """Resolve each phase of ``spec`` against the concrete trace length."""
        plans = []
        boundaries = spec.phase_boundaries(self.num_instructions)
        start = 0
        for phase, end in zip(spec.phases, boundaries):
            phase_insns = end - start
            if phase_insns <= 0:
                start = end
                continue
            mem_fraction = min(0.95, spec.mem_ref_fraction * phase.mem_fraction_multiplier)
            num_accesses = max(1, int(round(phase_insns * mem_fraction)))
            reuse = spec.reuse.scaled(
                depth_scale=phase.reuse_depth_multiplier,
                new_scale=phase.new_line_multiplier,
            )
            triples = reuse.probabilities()
            bucket_bounds = tuple((low, high) for low, high, _ in triples)
            bucket_probs = np.array([probability for _, _, probability in triples], dtype=np.float64)
            plans.append(
                _PhasePlan(
                    start_insn=start,
                    end_insn=end,
                    num_accesses=num_accesses,
                    base_cpi=spec.base_cpi * phase.cpi_multiplier,
                    bucket_bounds=bucket_bounds,
                    bucket_probs=bucket_probs,
                    new_prob=reuse.new_probability,
                )
            )
            start = end
        return plans

    @staticmethod
    def _access_positions(plan: _PhasePlan) -> np.ndarray:
        """Evenly spread access instruction indices across the phase."""
        positions = plan.start_insn + np.floor(
            (np.arange(plan.num_accesses) + 0.5) * plan.num_instructions / plan.num_accesses
        ).astype(np.int64)
        return np.minimum(positions, plan.end_insn - 1)

    @staticmethod
    def _draw_depths(plan: _PhasePlan, rng: np.random.Generator) -> np.ndarray:
        """Draw a reuse depth per access; -1 encodes a brand-new line."""
        n = plan.num_accesses
        depths = np.full(n, -1, dtype=np.int64)
        if len(plan.bucket_probs) == 0:
            return depths
        reuse_prob_total = float(plan.bucket_probs.sum())
        uniform = rng.random(n)
        is_reuse = uniform < reuse_prob_total
        num_reuse = int(is_reuse.sum())
        if num_reuse == 0:
            return depths
        # Choose a bucket per reusing access, then a uniform depth inside it.
        bucket_choice = rng.choice(
            len(plan.bucket_probs), size=num_reuse, p=plan.bucket_probs / reuse_prob_total
        )
        lows = np.array([low for low, _ in plan.bucket_bounds], dtype=np.int64)
        highs = np.array([high for _, high in plan.bucket_bounds], dtype=np.int64)
        chosen_low = lows[bucket_choice]
        chosen_high = highs[bucket_choice]
        reuse_depths = chosen_low + 1 + np.floor(
            rng.random(num_reuse) * (chosen_high - chosen_low)
        ).astype(np.int64)
        depths[is_reuse] = reuse_depths
        return depths


def generate_trace(
    spec: BenchmarkSpec, num_instructions: int = 200_000, seed: int = 0
) -> MemoryTrace:
    """Convenience wrapper: generate one benchmark's trace."""
    return TraceGenerator(num_instructions=num_instructions, seed=seed).generate(spec)
