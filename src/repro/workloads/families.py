"""Parametric synthetic benchmark families beyond the SPEC-like suite.

The paper's argument is statistical coverage of the workload space, so
the suite should not be a closed set: this module provides two
*parametric* families that the workload registry
(:mod:`repro.workloads.registry`) exposes as spec strings:

* :func:`random_suite` (``random:n=...,seed=...``) — benchmarks drawn
  uniformly from the :class:`ReuseProfile` parameter space (reuse-depth
  buckets, streaming weight, working-set size, memory intensity, MLP,
  optional phases).  Useful for sensitivity studies that must not be
  tuned to the hand-crafted SPEC-like behaviours.
* :func:`service_suite` (``service:n=...,seed=...``) — bursty,
  strongly-phased microservice-like benchmarks modelled on the
  behaviour observed in request-serving systems (cf. the
  DeathStarBench-style microservices benchmarking literature): every
  benchmark alternates request bursts (high memory-reference rate,
  heavy cold-miss traffic) with drain/compute phases, on top of a
  role-specific cache behaviour (RPC gateway, auth cache, key-value
  cache, database shard, ...).

Both families are pure functions of ``(n, seed)``: benchmark ``i`` of a
family is identical for every suite size ``n > i``, so scaling a study
up never changes the benchmarks already evaluated — and their
single-core profiles stay cache hits, via the
:class:`~repro.profiling.store.ProfileStore`'s content-addressed
shared layer.  (Engine *results* are qualified by the full workload
spec including ``n``, so mix-level artefacts are per-workload by
design.)
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.benchmark import BenchmarkSpec, PhaseSpec, ReuseProfile
from repro.workloads.suite import BenchmarkSuite

#: Seed-sequence tags keeping the families' random streams disjoint
#: from each other and from trace generation.
_RANDOM_TAG = 0x52414E44  # "RAND"
_SERVICE_TAG = 0x53565243  # "SVRC"


# ---------------------------------------------------------------------------
# random:* — uniform draws over the ReuseProfile space
# ---------------------------------------------------------------------------


def _random_phases(rng: np.random.Generator) -> Tuple[PhaseSpec, ...]:
    """With probability ~0.4, give the benchmark 2-3 drifting phases."""
    if rng.random() >= 0.4:
        return (PhaseSpec(fraction=1.0),)
    num_phases = int(rng.integers(2, 4))
    raw = rng.uniform(0.5, 1.5, size=num_phases)
    fractions = raw / raw.sum()
    phases = []
    for fraction in fractions:
        phases.append(
            PhaseSpec(
                fraction=float(fraction),
                cpi_multiplier=float(rng.uniform(0.8, 1.4)),
                mem_fraction_multiplier=float(rng.uniform(0.6, 1.5)),
                reuse_depth_multiplier=float(rng.uniform(0.5, 1.8)),
                new_line_multiplier=float(rng.uniform(0.5, 2.5)),
            )
        )
    return tuple(phases)


def random_benchmark(index: int, seed: int = 0) -> BenchmarkSpec:
    """Benchmark ``index`` of the ``random:seed=...`` family.

    A pure function of ``(index, seed)``; see the module docstring for
    the stability guarantee.
    """
    rng = np.random.default_rng((_RANDOM_TAG, seed, index))
    num_buckets = int(rng.integers(2, 6))
    # Log-uniform bucket depths between the private L1 scale and far
    # beyond the shared L3, deduplicated and strictly increasing.
    depths = np.unique(
        np.exp(rng.uniform(np.log(4), np.log(4096), size=num_buckets)).astype(np.int64)
    )
    depths = depths[depths >= 2]
    if depths.size == 0:
        depths = np.array([8], dtype=np.int64)
    # Geometric-ish decay so near reuse dominates, as in real programs.
    weights = np.sort(rng.uniform(0.05, 1.0, size=depths.size))[::-1]
    weights *= 0.6 ** np.arange(depths.size)
    buckets = tuple(
        (int(depth), float(weight)) for depth, weight in zip(depths, weights)
    )
    new_weight = float(rng.uniform(0.0, 0.12) * weights.sum())
    working_set = int(np.exp(rng.uniform(np.log(256), np.log(40_000))))
    return BenchmarkSpec(
        name=f"rnd{index:02d}",
        base_cpi=float(rng.uniform(0.4, 0.95)),
        mem_ref_fraction=float(rng.uniform(0.18, 0.38)),
        reuse=ReuseProfile(buckets=buckets, new_weight=new_weight),
        working_set_lines=working_set,
        mlp=float(rng.uniform(1.0, 4.0)),
        phases=_random_phases(rng),
        seed=10_000 + index,
    )


def random_suite(num_benchmarks: int = 8, seed: int = 0) -> BenchmarkSuite:
    """``num_benchmarks`` benchmarks drawn from the ReuseProfile space."""
    return BenchmarkSuite(
        specs=tuple(random_benchmark(i, seed=seed) for i in range(num_benchmarks))
    )


# ---------------------------------------------------------------------------
# service:* — bursty, strongly-phased microservice-like benchmarks
# ---------------------------------------------------------------------------

#: (role, base_cpi, mem_ref_fraction, reuse buckets, new_weight,
#:  working-set lines, mlp).  Reuse depths are tuned against the same
#:  scaled hierarchy as the SPEC-like suite (L1 32 / L2 256 / L3
#:  512-2048 lines).
_SERVICE_ROLES: Tuple[Tuple[str, float, float, Tuple[Tuple[int, float], ...], float, int, float], ...] = (
    # RPC front door: payload marshalling streams, small hot code set.
    ("gateway", 0.55, 0.34, ((8, 0.50), (32, 0.16), (128, 0.05)), 0.11, 24_000, 3.2),
    # Token/auth lookups: tiny hot working set, cache friendly.
    ("auth", 0.45, 0.24, ((8, 0.62), (24, 0.24), (96, 0.08)), 0.01, 700, 2.2),
    # In-memory key-value cache: working set sized to the shared L3.
    ("kvcache", 0.50, 0.33, ((8, 0.48), (28, 0.20), (220, 0.07), (500, 0.035)), 0.008, 1_400, 1.5),
    # Database shard: deep capacity reuse plus write bursts.
    ("dbshard", 0.80, 0.31, ((8, 0.40), (32, 0.17), (512, 0.06), (4096, 0.07)), 0.05, 12_000, 2.4),
    # Inverted-index search: mixed near reuse and deep scans.
    ("search", 0.60, 0.30, ((8, 0.50), (28, 0.20), (192, 0.08), (1024, 0.04)), 0.03, 6_000, 2.0),
    # Timeline/feed assembly: bursty streaming over fan-in data.
    ("feed", 0.65, 0.32, ((8, 0.46), (24, 0.18), (160, 0.06)), 0.09, 20_000, 2.8),
    # Media thumbnailing: pure streaming over large payloads.
    ("media", 0.70, 0.36, ((8, 0.44), (24, 0.16), (96, 0.05)), 0.15, 40_000, 3.8),
    # Message queue broker: ring-buffer reuse with append bursts.
    ("queue", 0.55, 0.30, ((8, 0.52), (40, 0.20), (300, 0.06)), 0.06, 3_000, 2.6),
)

#: Strongly-phased request cycle: burst -> steady -> drain -> burst.
#: Bursts triple the cold-miss traffic and raise the access rate, the
#: drain phase is compute-heavy with shallow reuse — the on/off load
#: pattern request-serving systems exhibit.
_SERVICE_PHASES = (
    PhaseSpec(fraction=0.2, mem_fraction_multiplier=1.6, new_line_multiplier=3.0, cpi_multiplier=0.9),
    PhaseSpec(fraction=0.35, mem_fraction_multiplier=1.0),
    PhaseSpec(fraction=0.25, mem_fraction_multiplier=0.6, reuse_depth_multiplier=0.6, cpi_multiplier=1.25),
    PhaseSpec(fraction=0.2, mem_fraction_multiplier=1.6, new_line_multiplier=3.0, cpi_multiplier=0.9),
)


def service_benchmark(index: int, seed: int = 0) -> BenchmarkSpec:
    """Benchmark ``index`` of the ``service:seed=...`` family.

    Role templates cycle (``svc-gateway``, ``svc-auth``, ...); a
    deterministic per-benchmark jitter drawn from ``(seed, index)``
    keeps two same-role services from being clones.
    """
    role, base_cpi, mem_fraction, buckets, new_weight, working_set, mlp = _SERVICE_ROLES[
        index % len(_SERVICE_ROLES)
    ]
    generation = index // len(_SERVICE_ROLES)
    name = f"svc-{role}" if generation == 0 else f"svc-{role}-{generation + 1}"
    rng = np.random.default_rng((_SERVICE_TAG, seed, index))
    jitter = float(rng.uniform(0.85, 1.15))
    reuse = ReuseProfile(
        buckets=tuple(
            (max(2, int(round(depth * jitter))), weight) for depth, weight in buckets
        ),
        new_weight=new_weight * float(rng.uniform(0.7, 1.3)),
    )
    return BenchmarkSpec(
        name=name,
        base_cpi=base_cpi * float(rng.uniform(0.9, 1.1)),
        mem_ref_fraction=min(0.5, mem_fraction * float(rng.uniform(0.9, 1.1))),
        reuse=reuse,
        working_set_lines=max(64, int(round(working_set * jitter))),
        mlp=mlp * float(rng.uniform(0.9, 1.1)),
        phases=_SERVICE_PHASES,
        seed=20_000 + index,
    )


def service_suite(num_benchmarks: int = 8, seed: int = 0) -> BenchmarkSuite:
    """``num_benchmarks`` bursty, strongly-phased service benchmarks."""
    return BenchmarkSuite(
        specs=tuple(service_benchmark(i, seed=seed) for i in range(num_benchmarks))
    )


__all__: List[str] = [
    "random_benchmark",
    "random_suite",
    "service_benchmark",
    "service_suite",
]
