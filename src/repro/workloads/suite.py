"""The 29-benchmark synthetic suite standing in for SPEC CPU2006.

Each benchmark is modelled after the qualitative behaviour of its SPEC
CPU2006 namesake as relevant to this paper: compute-bound and
cache-friendly programs (``hmmer``, ``povray``, ``namd``, ...),
LLC-sensitive programs whose working set fits the shared L3 when run
alone but not when sharing it (``gamess`` — the paper's most sensitive
benchmark — plus ``gobmk``, ``soplex``, ``omnetpp``, ``h264ref``,
``xalancbmk``), and memory-intensive streaming or capacity-bound
programs (``lbm``, ``libquantum``, ``mcf``, ``milc``, ...).  Several
benchmarks have multiple execution phases to exercise MPPM's
time-varying-behaviour modelling.

Reuse depths are expressed in cache lines and are tuned against the
default experiment scale (cache capacities divided by 16, 200K
instruction traces — see :mod:`repro.config.scaling`): at that scale
the private L1 holds 32 lines, the private L2 256 lines and the shared
L3 between 512 lines (config #1) and 2,048 lines (config #6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.workloads.benchmark import (
    BenchmarkSpec,
    PhaseSpec,
    ReuseProfile,
    WorkloadError,
    validate_suite,
)


@dataclass(frozen=True)
class BenchmarkSuite:
    """An ordered, name-indexed collection of benchmark specs."""

    specs: Tuple[BenchmarkSpec, ...]

    def __post_init__(self) -> None:
        validate_suite(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[BenchmarkSpec]:
        return iter(self.specs)

    def __contains__(self, name: str) -> bool:
        return any(spec.name == name for spec in self.specs)

    def __getitem__(self, name: str) -> BenchmarkSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no benchmark named {name!r} in the suite")

    @property
    def names(self) -> List[str]:
        return [spec.name for spec in self.specs]

    def subset(self, names: Sequence[str]) -> "BenchmarkSuite":
        """A suite restricted to the given benchmark names (in that order)."""
        return BenchmarkSuite(specs=tuple(self[name] for name in names))

    def describe(self) -> str:
        return "\n".join(spec.describe() for spec in self.specs)


# ---------------------------------------------------------------------------
# Archetype helpers.  Reuse depths in lines; see module docstring for the
# cache sizes they are tuned against.
# ---------------------------------------------------------------------------


def _cache_friendly(
    name: str,
    seed: int,
    base_cpi: float = 0.55,
    mem_ref_fraction: float = 0.22,
    mlp: float = 2.0,
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(fraction=1.0),),
) -> BenchmarkSpec:
    """Compute-bound program whose working set fits the private caches."""
    return BenchmarkSpec(
        name=name,
        base_cpi=base_cpi,
        mem_ref_fraction=mem_ref_fraction,
        reuse=ReuseProfile(
            buckets=((8, 0.62), (24, 0.24), (96, 0.09), (224, 0.045)),
            new_weight=0.005,
        ),
        working_set_lines=512,
        mlp=mlp,
        phases=phases,
        seed=seed,
    )


def _llc_sensitive(
    name: str,
    seed: int,
    base_cpi: float = 0.5,
    mem_ref_fraction: float = 0.3,
    llc_weight: float = 0.035,
    deep_limit: int = 480,
    mlp: float = 1.6,
    new_weight: float = 0.004,
    working_set_lines: int = 1200,
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(fraction=1.0),),
) -> BenchmarkSpec:
    """Program with a working set that fits the shared L3 alone but not shared."""
    return BenchmarkSpec(
        name=name,
        base_cpi=base_cpi,
        mem_ref_fraction=mem_ref_fraction,
        reuse=ReuseProfile(
            buckets=(
                (8, 0.55),
                (28, 0.22),
                (200, 0.08),
                (deep_limit, llc_weight),
            ),
            new_weight=new_weight,
        ),
        working_set_lines=working_set_lines,
        mlp=mlp,
        phases=phases,
        seed=seed,
    )


def _memory_streaming(
    name: str,
    seed: int,
    base_cpi: float = 0.7,
    mem_ref_fraction: float = 0.34,
    new_weight: float = 0.10,
    mlp: float = 3.5,
    working_set_lines: int = 30_000,
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(fraction=1.0),),
) -> BenchmarkSpec:
    """Streaming program: frequent cold misses, little temporal reuse."""
    return BenchmarkSpec(
        name=name,
        base_cpi=base_cpi,
        mem_ref_fraction=mem_ref_fraction,
        reuse=ReuseProfile(
            buckets=((8, 0.5), (24, 0.2), (128, 0.06)),
            new_weight=new_weight,
        ),
        working_set_lines=working_set_lines,
        mlp=mlp,
        phases=phases,
        seed=seed,
    )


def _memory_capacity(
    name: str,
    seed: int,
    base_cpi: float = 0.8,
    mem_ref_fraction: float = 0.32,
    mlp: float = 2.2,
    working_set_lines: int = 9_000,
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(fraction=1.0),),
) -> BenchmarkSpec:
    """Capacity-bound program: reuse far beyond any cache level."""
    return BenchmarkSpec(
        name=name,
        base_cpi=base_cpi,
        mem_ref_fraction=mem_ref_fraction,
        reuse=ReuseProfile(
            buckets=((8, 0.42), (32, 0.18), (512, 0.06), (4096, 0.08)),
            new_weight=0.05,
        ),
        working_set_lines=working_set_lines,
        mlp=mlp,
        phases=phases,
        seed=seed,
    )


def _mixed(
    name: str,
    seed: int,
    base_cpi: float = 0.65,
    mem_ref_fraction: float = 0.28,
    mlp: float = 2.0,
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(fraction=1.0),),
) -> BenchmarkSpec:
    """Program with both cache-friendly and memory-bound components."""
    return BenchmarkSpec(
        name=name,
        base_cpi=base_cpi,
        mem_ref_fraction=mem_ref_fraction,
        reuse=ReuseProfile(
            buckets=((8, 0.52), (28, 0.22), (192, 0.08), (448, 0.018), (2048, 0.02)),
            new_weight=0.012,
        ),
        working_set_lines=4_000,
        mlp=mlp,
        phases=phases,
        seed=seed,
    )


_TWO_PHASE = (
    PhaseSpec(fraction=0.5, reuse_depth_multiplier=1.0),
    PhaseSpec(fraction=0.5, reuse_depth_multiplier=1.8, mem_fraction_multiplier=1.25),
)
_THREE_PHASE = (
    PhaseSpec(fraction=0.4),
    PhaseSpec(fraction=0.3, cpi_multiplier=1.3, new_line_multiplier=2.0),
    PhaseSpec(fraction=0.3, reuse_depth_multiplier=0.6, mem_fraction_multiplier=0.8),
)
_BURSTY_PHASE = (
    PhaseSpec(fraction=0.25, new_line_multiplier=3.0, mem_fraction_multiplier=1.3),
    PhaseSpec(fraction=0.5),
    PhaseSpec(fraction=0.25, new_line_multiplier=3.0, mem_fraction_multiplier=1.3),
)


def spec_cpu2006_like_suite() -> BenchmarkSuite:
    """The full 29-benchmark suite used by the experiments.

    The names follow SPEC CPU2006; the behaviours follow the roles the
    paper assigns to them (e.g. ``gamess`` is by far the most sensitive
    to cache sharing; ``hmmer`` is barely affected; ``lbm`` and
    ``libquantum`` are streaming memory hogs).
    """
    specs: List[BenchmarkSpec] = [
        # --- SPEC CPU2006 integer benchmarks -------------------------------
        _mixed("perlbench", seed=101, base_cpi=0.6, mem_ref_fraction=0.26),
        _cache_friendly("bzip2", seed=102, base_cpi=0.7, mem_ref_fraction=0.26, mlp=2.2),
        _mixed("gcc", seed=103, base_cpi=0.75, mem_ref_fraction=0.3, phases=_THREE_PHASE),
        _memory_capacity("mcf", seed=104, base_cpi=0.9, mem_ref_fraction=0.35, mlp=2.8,
                         working_set_lines=12_000),
        _llc_sensitive("gobmk", seed=105, base_cpi=0.8, llc_weight=0.02, deep_limit=440,
                       mlp=1.8, working_set_lines=900),
        _cache_friendly("hmmer", seed=106, base_cpi=0.5, mem_ref_fraction=0.2, mlp=2.5),
        _cache_friendly("sjeng", seed=107, base_cpi=0.85, mem_ref_fraction=0.24, mlp=2.0),
        _memory_streaming("libquantum", seed=108, base_cpi=0.6, new_weight=0.14, mlp=4.0,
                          working_set_lines=40_000),
        _llc_sensitive("h264ref", seed=109, base_cpi=0.55, llc_weight=0.016, deep_limit=420,
                       mlp=2.0, working_set_lines=1_000),
        _llc_sensitive("omnetpp", seed=110, base_cpi=0.75, llc_weight=0.022, deep_limit=500,
                       mlp=1.7, new_weight=0.01, working_set_lines=2_000),
        _mixed("astar", seed=111, base_cpi=0.7, mem_ref_fraction=0.3, phases=_TWO_PHASE),
        _llc_sensitive("xalancbmk", seed=112, base_cpi=0.65, llc_weight=0.02, deep_limit=460,
                       mlp=1.8, new_weight=0.012, working_set_lines=1_800),
        # --- SPEC CPU2006 floating-point benchmarks ------------------------
        _memory_streaming("bwaves", seed=201, base_cpi=0.65, new_weight=0.09, mlp=3.8,
                          phases=_TWO_PHASE, working_set_lines=25_000),
        # gamess is the paper's most sharing-sensitive benchmark (its Figure 6
        # and Section 6 single it out, slowed down ~2.2x); a custom reuse
        # profile places a chunk of its working set just inside the shared L3
        # so that it hits when alone and thrashes when sharing.
        BenchmarkSpec(
            name="gamess",
            base_cpi=0.40,
            mem_ref_fraction=0.36,
            reuse=ReuseProfile(
                buckets=((8, 0.55), (28, 0.22), (96, 0.06), (336, 0.015), (500, 0.035)),
                new_weight=0.001,
            ),
            working_set_lines=560,
            mlp=1.0,
            seed=202,
        ),
        _memory_streaming("milc", seed=203, base_cpi=0.75, new_weight=0.11, mlp=3.0,
                          working_set_lines=28_000),
        _mixed("zeusmp", seed=204, base_cpi=0.7, mem_ref_fraction=0.29),
        _cache_friendly("gromacs", seed=205, base_cpi=0.6, mem_ref_fraction=0.24, mlp=2.4),
        _memory_capacity("cactusADM", seed=206, base_cpi=0.85, mem_ref_fraction=0.3,
                         phases=_BURSTY_PHASE),
        _memory_streaming("leslie3d", seed=207, base_cpi=0.7, new_weight=0.10, mlp=3.2,
                          working_set_lines=26_000),
        _cache_friendly("namd", seed=208, base_cpi=0.55, mem_ref_fraction=0.21, mlp=2.6),
        _cache_friendly("dealII", seed=209, base_cpi=0.6, mem_ref_fraction=0.25, mlp=2.2),
        _llc_sensitive("soplex", seed=210, base_cpi=0.7, mem_ref_fraction=0.32,
                       llc_weight=0.024, deep_limit=480, mlp=1.8, new_weight=0.012,
                       working_set_lines=3_000),
        _cache_friendly("povray", seed=211, base_cpi=0.5, mem_ref_fraction=0.2, mlp=2.8),
        _cache_friendly("calculix", seed=212, base_cpi=0.6, mem_ref_fraction=0.23, mlp=2.4),
        _memory_capacity("GemsFDTD", seed=213, base_cpi=0.8, mem_ref_fraction=0.31, mlp=2.6,
                         working_set_lines=14_000),
        _cache_friendly("tonto", seed=214, base_cpi=0.65, mem_ref_fraction=0.24, mlp=2.2),
        _memory_streaming("lbm", seed=215, base_cpi=0.6, mem_ref_fraction=0.36,
                          new_weight=0.16, mlp=4.2, working_set_lines=45_000),
        _mixed("wrf", seed=216, base_cpi=0.7, mem_ref_fraction=0.27, phases=_THREE_PHASE),
        _mixed("sphinx3", seed=217, base_cpi=0.65, mem_ref_fraction=0.3, phases=_TWO_PHASE),
    ]
    return BenchmarkSuite(specs=tuple(specs))


def small_suite(num_benchmarks: int = 8) -> BenchmarkSuite:
    """A reduced suite for tests and quick examples.

    Picks a spread of behaviours (cache-friendly, LLC-sensitive,
    streaming, capacity-bound, phased) so that small experiments still
    exhibit the heterogeneity the paper relies on.
    """
    preferred_order = [
        "gamess",
        "hmmer",
        "soplex",
        "lbm",
        "mcf",
        "omnetpp",
        "povray",
        "astar",
        "libquantum",
        "gobmk",
        "namd",
        "gcc",
        "xalancbmk",
        "milc",
        "bzip2",
        "sphinx3",
    ]
    if num_benchmarks <= 0:
        raise WorkloadError("num_benchmarks must be positive")
    full = spec_cpu2006_like_suite()
    names = preferred_order[: min(num_benchmarks, len(preferred_order))]
    if num_benchmarks > len(preferred_order):
        extra = [name for name in full.names if name not in names]
        names += extra[: num_benchmarks - len(names)]
    return full.subset(names)


def suite_summary(suite: BenchmarkSuite) -> Dict[str, str]:
    """Map benchmark name to its one-line description."""
    return {spec.name: spec.describe() for spec in suite}
