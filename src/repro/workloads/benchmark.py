"""Benchmark specifications for the synthetic workload suite.

A :class:`BenchmarkSpec` captures, per benchmark, everything the trace
generator needs to produce a deterministic memory-access trace whose
cache behaviour mimics a particular kind of program:

* ``base_cpi`` — the non-memory CPI of the program (compute intensity),
* ``mem_ref_fraction`` — how many instructions are loads/stores,
* ``reuse`` — a :class:`ReuseProfile`: a distribution over LRU-stack
  reuse depths (in cache lines) plus a probability of touching a brand
  new line.  This is what determines hit/miss behaviour at every cache
  level and is the knob that makes a benchmark cache-friendly,
  LLC-sensitive or streaming.
* ``working_set_lines`` — the footprint cap; new-line accesses beyond
  it wrap around, turning streaming behaviour into capacity behaviour,
* ``mlp`` — memory-level parallelism: the effective memory latency seen
  by the core is ``memory latency / mlp``,
* ``phases`` — optional time-varying behaviour: the trace is divided
  into phases, each of which scales the reuse/memory parameters.  The
  paper stresses that MPPM models time-varying phase behaviour, so the
  suite contains several strongly phased benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np


class WorkloadError(ValueError):
    """Raised for invalid benchmark or workload specifications."""


@dataclass(frozen=True)
class ReuseProfile:
    """A distribution over temporal-reuse depths, in cache lines.

    ``buckets`` is a sequence of ``(max_depth, weight)`` pairs: with
    probability proportional to ``weight`` an access reuses a line at a
    uniformly random depth in ``(previous bucket's max_depth,
    max_depth]`` of the program's private LRU stack.  ``new_weight`` is
    the probability weight of touching a line never accessed before
    (streaming / cold behaviour).  Weights need not be normalised.
    """

    buckets: Tuple[Tuple[int, float], ...]
    new_weight: float = 0.0

    def __post_init__(self) -> None:
        if not self.buckets and self.new_weight <= 0:
            raise WorkloadError("a reuse profile needs at least one bucket or a new-line weight")
        previous = 0
        for depth, weight in self.buckets:
            if depth <= previous:
                raise WorkloadError(
                    f"reuse buckets must have strictly increasing depths, got {depth} after {previous}"
                )
            if weight < 0:
                raise WorkloadError(f"bucket weights must be non-negative, got {weight}")
            previous = depth
        if self.new_weight < 0:
            raise WorkloadError(f"new-line weight must be non-negative, got {self.new_weight}")
        if self.total_weight <= 0:
            raise WorkloadError("reuse profile has zero total weight")

    @property
    def total_weight(self) -> float:
        return sum(weight for _, weight in self.buckets) + self.new_weight

    @property
    def max_depth(self) -> int:
        """Deepest reuse depth the profile can produce (0 if streaming only)."""
        return self.buckets[-1][0] if self.buckets else 0

    def probabilities(self) -> Tuple[Tuple[int, int, float], ...]:
        """Normalised ``(low_depth, high_depth, probability)`` triples.

        ``low_depth`` is exclusive, ``high_depth`` inclusive — an access
        drawn from the triple reuses a line at a uniform depth in
        ``[low_depth + 1, high_depth]``.  The new-line probability is
        ``1 - sum(probabilities)``.
        """
        total = self.total_weight
        triples = []
        previous = 0
        for depth, weight in self.buckets:
            triples.append((previous, depth, weight / total))
            previous = depth
        return tuple(triples)

    @property
    def new_probability(self) -> float:
        """Probability of touching a brand-new line."""
        return self.new_weight / self.total_weight

    def scaled(self, depth_scale: float = 1.0, new_scale: float = 1.0) -> "ReuseProfile":
        """Return a profile with depths and/or the new-line weight scaled.

        Used by phases to make a benchmark temporarily more or less
        cache-friendly without redefining the whole distribution.
        """
        if depth_scale <= 0 or new_scale < 0:
            raise WorkloadError("scale factors must be positive (new_scale may be zero)")
        buckets = []
        previous = 0
        for depth, weight in self.buckets:
            new_depth = max(previous + 1, int(round(depth * depth_scale)))
            buckets.append((new_depth, weight))
            previous = new_depth
        return ReuseProfile(buckets=tuple(buckets), new_weight=self.new_weight * new_scale)


@dataclass(frozen=True)
class PhaseSpec:
    """One execution phase of a benchmark.

    ``fraction`` of the benchmark's instructions belong to this phase.
    The remaining fields multiply the benchmark-level parameters while
    the phase is active, producing time-varying behaviour.
    """

    fraction: float
    cpi_multiplier: float = 1.0
    mem_fraction_multiplier: float = 1.0
    reuse_depth_multiplier: float = 1.0
    new_line_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise WorkloadError(f"phase fraction must be in (0, 1], got {self.fraction}")
        for value, label in (
            (self.cpi_multiplier, "cpi_multiplier"),
            (self.mem_fraction_multiplier, "mem_fraction_multiplier"),
            (self.reuse_depth_multiplier, "reuse_depth_multiplier"),
        ):
            if value <= 0:
                raise WorkloadError(f"{label} must be positive, got {value}")
        if self.new_line_multiplier < 0:
            raise WorkloadError(
                f"new_line_multiplier must be non-negative, got {self.new_line_multiplier}"
            )


def _single_phase() -> Tuple[PhaseSpec, ...]:
    return (PhaseSpec(fraction=1.0),)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Complete specification of one synthetic benchmark."""

    name: str
    base_cpi: float = 0.6
    mem_ref_fraction: float = 0.3
    reuse: ReuseProfile = field(
        default_factory=lambda: ReuseProfile(buckets=((16, 0.7), (128, 0.2), (1024, 0.1)))
    )
    working_set_lines: int = 4096
    mlp: float = 1.5
    phases: Tuple[PhaseSpec, ...] = field(default_factory=_single_phase)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("benchmark name must be non-empty")
        if self.base_cpi <= 0:
            raise WorkloadError(f"{self.name}: base CPI must be positive, got {self.base_cpi}")
        if not 0 < self.mem_ref_fraction < 1:
            raise WorkloadError(
                f"{self.name}: mem_ref_fraction must be in (0, 1), got {self.mem_ref_fraction}"
            )
        if self.working_set_lines <= 0:
            raise WorkloadError(
                f"{self.name}: working_set_lines must be positive, got {self.working_set_lines}"
            )
        if self.mlp <= 0:
            raise WorkloadError(f"{self.name}: mlp must be positive, got {self.mlp}")
        if not self.phases:
            raise WorkloadError(f"{self.name}: at least one phase is required")
        total_fraction = sum(phase.fraction for phase in self.phases)
        if not np.isclose(total_fraction, 1.0, atol=1e-6):
            raise WorkloadError(
                f"{self.name}: phase fractions must sum to 1, got {total_fraction}"
            )

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def effective_memory_latency_factor(self) -> float:
        """Multiplier applied to the raw memory latency (1 / MLP)."""
        return 1.0 / self.mlp

    def phase_boundaries(self, num_instructions: int) -> Tuple[int, ...]:
        """Instruction indices at which each phase ends (cumulative)."""
        boundaries = []
        cumulative = 0.0
        for phase in self.phases:
            cumulative += phase.fraction
            boundaries.append(int(round(cumulative * num_instructions)))
        boundaries[-1] = num_instructions
        return tuple(boundaries)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.name}: base CPI {self.base_cpi:.2f}, "
            f"{self.mem_ref_fraction:.0%} memory refs, "
            f"working set {self.working_set_lines} lines, "
            f"{self.num_phases} phase(s)"
        )


def validate_suite(specs: Sequence[BenchmarkSpec]) -> None:
    """Check that a collection of specs has unique names."""
    names = [spec.name for spec in specs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise WorkloadError(f"duplicate benchmark names in suite: {sorted(duplicates)}")
