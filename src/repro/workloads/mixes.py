"""Multi-program workload mixes: counting, enumeration and sampling.

A multi-program workload for an M-core machine is a multiset of M
benchmark names (programs may repeat: the paper's worst-case 4-program
workload contains two copies of ``gamess``).  For N benchmarks there
are ``C(N + M - 1, M)`` such mixes — 435 two-program mixes, 35,960
four-program mixes and over 30.2 million eight-program mixes for the 29
SPEC CPU2006 benchmarks (paper §1), which is why exhaustive detailed
simulation is infeasible and why MPPM exists.

This module provides:

* :func:`count_mixes` — the combinatorial count above,
* :func:`enumerate_mixes` — lazily enumerate all mixes,
* :func:`sample_mixes` — draw random mixes (current practice and the
  MPPM large-sample evaluation both use this),
* :func:`sample_category_mixes` — draw mixes within MEM/COMP/MIX
  categories (the "current practice with classes" of Section 5).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.benchmark import WorkloadError
from repro.workloads.classification import BenchmarkClass


@dataclass(frozen=True, order=True)
class WorkloadMix:
    """A multi-program workload: an ordered tuple of benchmark names.

    Two mixes that contain the same programs in a different order are
    considered equal (the machine is symmetric); the canonical form
    stores the names sorted.
    """

    programs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.programs:
            raise WorkloadError("a workload mix must contain at least one program")
        object.__setattr__(self, "programs", tuple(sorted(self.programs)))

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    @property
    def distinct_programs(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.programs)))

    def counts(self) -> Dict[str, int]:
        """How many copies of each program the mix contains."""
        result: Dict[str, int] = {}
        for name in self.programs:
            result[name] = result.get(name, 0) + 1
        return result

    def label(self) -> str:
        """Compact human-readable label, e.g. ``"2x gamess + hmmer + soplex"``."""
        parts = []
        for name, count in sorted(self.counts().items()):
            parts.append(f"{count}x {name}" if count > 1 else name)
        return " + ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.label()


def count_mixes(num_benchmarks: int, num_programs: int) -> int:
    """Number of multisets of size ``num_programs`` out of ``num_benchmarks``.

    This is the paper's combinations-with-repetition count,
    ``C(N + M - 1, M)``.
    """
    if num_benchmarks <= 0 or num_programs <= 0:
        raise WorkloadError("both num_benchmarks and num_programs must be positive")
    return math.comb(num_benchmarks + num_programs - 1, num_programs)


def enumerate_mixes(benchmarks: Sequence[str], num_programs: int) -> Iterator[WorkloadMix]:
    """Lazily enumerate every possible mix (combinations with repetition)."""
    if num_programs <= 0:
        raise WorkloadError("num_programs must be positive")
    if not benchmarks:
        raise WorkloadError("benchmark list must be non-empty")
    for combo in itertools.combinations_with_replacement(sorted(benchmarks), num_programs):
        yield WorkloadMix(programs=combo)


def sample_mixes(
    benchmarks: Sequence[str],
    num_programs: int,
    num_mixes: int,
    seed: int = 0,
    unique: bool = True,
) -> List[WorkloadMix]:
    """Draw random multi-program mixes.

    Programs within a mix are drawn uniformly with replacement from the
    benchmark list (any program can appear multiple times, as in the
    paper).  When ``unique`` is true, duplicate mixes are rejected so
    the sample contains ``num_mixes`` distinct mixes; if the space of
    mixes is smaller than ``num_mixes`` all mixes are returned.
    """
    if num_mixes <= 0:
        raise WorkloadError("num_mixes must be positive")
    if not benchmarks:
        raise WorkloadError("benchmark list must be non-empty")
    rng = np.random.default_rng(seed)
    names = sorted(benchmarks)
    total = count_mixes(len(names), num_programs)
    if unique and num_mixes >= total:
        return list(enumerate_mixes(names, num_programs))

    mixes: List[WorkloadMix] = []
    seen = set()
    # Rejection sampling; the space is astronomically larger than any
    # sample we draw, so collisions are rare.
    max_attempts = 50 * num_mixes + 1000
    attempts = 0
    while len(mixes) < num_mixes and attempts < max_attempts:
        attempts += 1
        picks = tuple(names[i] for i in rng.integers(0, len(names), size=num_programs))
        mix = WorkloadMix(programs=picks)
        if unique:
            if mix.programs in seen:
                continue
            seen.add(mix.programs)
        mixes.append(mix)
    if len(mixes) < num_mixes:
        raise WorkloadError(
            f"could not sample {num_mixes} unique mixes from a space of {total}"
        )
    return mixes


def sample_category_mixes(
    classification: Mapping[str, BenchmarkClass],
    num_programs: int,
    mixes_per_category: int,
    seed: int = 0,
    categories: Optional[Sequence[BenchmarkClass]] = None,
    mixed_fraction_mem: float = 0.5,
) -> List[WorkloadMix]:
    """Draw mixes within MEM / COMP / MIX categories (current practice).

    * a MEM-category mix contains only memory-intensive programs,
    * a COMP-category mix contains only compute-intensive programs,
    * a MIX-category mix combines both: roughly ``mixed_fraction_mem``
      of its slots hold MEM programs and the rest COMP programs.

    Benchmarks classified as :class:`BenchmarkClass.MIX` participate in
    the MIX category together with MEM and COMP programs.
    """
    if mixes_per_category <= 0:
        raise WorkloadError("mixes_per_category must be positive")
    if not 0 <= mixed_fraction_mem <= 1:
        raise WorkloadError("mixed_fraction_mem must be within [0, 1]")
    rng = np.random.default_rng(seed)
    chosen_categories = list(categories) if categories is not None else list(BenchmarkClass)

    mem_names = sorted(n for n, c in classification.items() if c == BenchmarkClass.MEM)
    comp_names = sorted(n for n, c in classification.items() if c == BenchmarkClass.COMP)
    mix_names = sorted(n for n, c in classification.items() if c == BenchmarkClass.MIX)

    def draw_from(pool: Sequence[str], count: int) -> List[str]:
        if not pool:
            raise WorkloadError("cannot draw programs from an empty category pool")
        return [pool[i] for i in rng.integers(0, len(pool), size=count)]

    result: List[WorkloadMix] = []
    for category in chosen_categories:
        for _ in range(mixes_per_category):
            if category == BenchmarkClass.MEM:
                programs = draw_from(mem_names or mix_names, num_programs)
            elif category == BenchmarkClass.COMP:
                programs = draw_from(comp_names or mix_names, num_programs)
            else:
                num_mem = int(round(num_programs * mixed_fraction_mem))
                num_comp = num_programs - num_mem
                mem_pool = mem_names + mix_names or comp_names
                comp_pool = comp_names + mix_names or mem_names
                programs = draw_from(mem_pool, num_mem) + draw_from(comp_pool, num_comp)
            result.append(WorkloadMix(programs=tuple(programs)))
    return result


def mixes_containing(mixes: Iterable[WorkloadMix], benchmark: str) -> List[WorkloadMix]:
    """Filter mixes to those containing a given benchmark."""
    return [mix for mix in mixes if benchmark in mix.programs]


def distinct_benchmarks(mixes: Iterable[WorkloadMix]) -> List[str]:
    """All benchmark names appearing anywhere in a collection of mixes."""
    names = set()
    for mix in mixes:
        names.update(mix.programs)
    return sorted(names)
