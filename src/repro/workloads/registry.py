"""Unified Workload API: one spec-string registry for benchmark suites.

PR 4 gave every performance estimator one registry
(:mod:`repro.predictors`); this module gives the *workload* side of an
experiment the same treatment.  A workload — the benchmark suite plus
the way multi-program mixes are drawn from it — is identified by a
spec string and constructed by :func:`make_workload`:

========================== ================================================
Spec                       Workload
========================== ================================================
``suite:spec29``           the full 29-benchmark SPEC CPU2006-like suite
                           (the default; today's behaviour)
``suite:spec29/scaled@N``  a curated ``N``-benchmark subset spanning the
                           suite's behaviours (``small_suite(N)``, the
                           CLI's historical ``--benchmarks N``)
``random:n=8,seed=0``      ``n`` parametric synthetic benchmarks drawn
                           from the :class:`ReuseProfile` space
``service:n=8,seed=0``     ``n`` bursty, strongly-phased
                           microservice-like benchmarks
========================== ================================================

Every constructed workload implements the :class:`WorkloadSource`
protocol — ``spec`` (the canonical string), ``suite()``, ``mixes(...)``
and ``describe()`` — and every experiment, the engine's content-hash
cache keys, the :class:`~repro.profiling.store.ProfileStore` and the
CLI (``--suite``, ``repro workloads``) identify workloads by these
spec strings instead of implicitly assuming the one suite.  A suite
object passed directly (tests, notebooks) is wrapped by
:func:`workload_for` under a content-digest ``inline:`` spec, so even
ad-hoc workloads cache consistently across processes.
"""

from __future__ import annotations

import hashlib
import re
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.workloads.benchmark import WorkloadError
from repro.workloads.classification import BenchmarkClass, classify_suite
from repro.workloads.families import random_suite, service_suite
from repro.workloads.mixes import WorkloadMix, sample_category_mixes, sample_mixes
from repro.workloads.suite import BenchmarkSuite, small_suite, spec_cpu2006_like_suite

#: The spec every experiment and CLI command defaults to.
DEFAULT_WORKLOAD = "suite:spec29"

#: Upper bound on parametric family sizes (keeps typos from asking for
#: a million benchmarks; far above any realistic study).
_MAX_FAMILY_SIZE = 128


class WorkloadSpecError(WorkloadError):
    """Raised for unknown or malformed workload specs."""


#: A mix category: a :class:`BenchmarkClass`, its (case-insensitive)
#: name ("mem" / "comp" / "mix"), or a sequence of either.
MixCategory = Union[str, BenchmarkClass, Sequence[Union[str, BenchmarkClass]]]


def resolve_categories(category: MixCategory) -> List[BenchmarkClass]:
    """Normalise a :data:`MixCategory` into a list of benchmark classes.

    Raises :class:`WorkloadError` naming the valid categories for
    anything unrecognised.
    """
    if isinstance(category, (str, BenchmarkClass)):
        category = [category]
    resolved = []
    for entry in category:
        if isinstance(entry, BenchmarkClass):
            resolved.append(entry)
            continue
        try:
            resolved.append(BenchmarkClass(str(entry).strip().upper()))
        except ValueError:
            raise WorkloadError(
                f"unknown mix category {entry!r}; valid categories: "
                + ", ".join(cls.value for cls in BenchmarkClass)
            ) from None
    if not resolved:
        raise WorkloadError("at least one mix category is required")
    return resolved


@runtime_checkable
class WorkloadSource(Protocol):
    """Anything that supplies a benchmark suite and samples mixes from it."""

    #: Canonical spec string (registry name), e.g. ``"suite:spec29"``.
    spec: str

    def suite(self) -> BenchmarkSuite:
        """The benchmark suite this workload evaluates."""
        ...  # pragma: no cover - protocol

    def mixes(
        self,
        num_programs: int,
        num_mixes: int,
        seed: int = 0,
        unique: bool = True,
        category: Optional[MixCategory] = None,
    ) -> List[WorkloadMix]:
        """Sample multi-program mixes over the suite's benchmarks."""
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """One-line human-readable description of the workload."""
        ...  # pragma: no cover - protocol


class RegisteredWorkload:
    """Concrete :class:`WorkloadSource`: canonical spec + lazy suite builder."""

    def __init__(self, spec: str, description: str, builder: Callable[[], BenchmarkSuite]) -> None:
        self.spec = spec
        self._description = description
        self._builder = builder
        self._suite: Optional[BenchmarkSuite] = None

    def suite(self) -> BenchmarkSuite:
        if self._suite is None:
            self._suite = self._builder()
        return self._suite

    def mixes(
        self,
        num_programs: int,
        num_mixes: int,
        seed: int = 0,
        unique: bool = True,
        category: Optional[MixCategory] = None,
    ) -> List[WorkloadMix]:
        """Sample mixes, optionally constrained to MEM/COMP/MIX categories.

        Without ``category`` this is uniform sampling over the suite
        (``num_mixes`` mixes, distinct when ``unique``).  With a
        category — a :class:`BenchmarkClass`, its name, or a sequence
        of either — mixes are drawn within each requested category
        ("current practice" sampling, §5 of the paper): ``num_mixes``
        mixes *per category*, drawn with replacement (``unique`` does
        not apply), in category order.
        """
        if category is None:
            return sample_mixes(
                self.suite().names, num_programs, num_mixes, seed=seed, unique=unique
            )
        return sample_category_mixes(
            classify_suite(self.suite()),
            num_programs,
            mixes_per_category=num_mixes,
            seed=seed,
            categories=resolve_categories(category),
        )

    def describe(self) -> str:
        return self._description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisteredWorkload({self.spec!r})"


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def _unknown(spec: str) -> WorkloadSpecError:
    return WorkloadSpecError(
        f"unknown workload spec {spec!r}; available workloads: "
        + ", ".join(available_workloads())
    )


def _parse_params(spec: str, rest: str, defaults: Dict[str, int]) -> Dict[str, int]:
    """Parse ``key=value`` parameter lists against a family's defaults."""
    params = dict(defaults)
    if not rest:
        return params
    for part in rest.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in defaults:
            raise _unknown(spec)
        try:
            params[key] = int(value)
        except ValueError:
            raise _unknown(spec) from None
    return params


def _parse_family(spec: str, family: str, rest: str) -> Tuple[str, Callable[[], BenchmarkSuite], str]:
    """(canonical spec, suite builder, description) for one parametric family."""
    params = _parse_params(spec, rest, {"n": 8, "seed": 0})
    n, seed = params["n"], params["seed"]
    if not 0 < n <= _MAX_FAMILY_SIZE:
        raise WorkloadSpecError(
            f"{spec!r}: n must be in [1, {_MAX_FAMILY_SIZE}], got {n}"
        )
    if seed < 0:
        raise WorkloadSpecError(f"{spec!r}: seed must be non-negative, got {seed}")
    canonical = f"{family}:n={n},seed={seed}"
    if family == "random":
        return (
            canonical,
            lambda: random_suite(n, seed=seed),
            f"{n} parametric synthetic benchmarks drawn from the ReuseProfile space (seed {seed})",
        )
    return (
        canonical,
        lambda: service_suite(n, seed=seed),
        f"{n} bursty, strongly-phased microservice-like benchmarks (seed {seed})",
    )


def _category_subset(categories: Sequence[BenchmarkClass]) -> BenchmarkSuite:
    """The full suite restricted to a set of MEM/COMP/MIX behaviour classes."""
    full = spec_cpu2006_like_suite()
    classes = classify_suite(full)
    wanted = set(categories)
    return full.subset([name for name in full.names if classes[name] in wanted])


#: Canonical category order for set-algebra specs (suite order: the
#: MEM benchmarks come first in listings, then COMP, then MIX).
_CATEGORY_ORDER = (BenchmarkClass.MEM, BenchmarkClass.COMP, BenchmarkClass.MIX)

#: Tokens of the category-set grammar; ``all`` is the universe, so
#: exclusions read naturally (``all-mix`` = everything but MIX).
_CATEGORY_TOKENS: Dict[str, frozenset] = {
    "mem": frozenset((BenchmarkClass.MEM,)),
    "comp": frozenset((BenchmarkClass.COMP,)),
    "mix": frozenset((BenchmarkClass.MIX,)),
    "all": frozenset(_CATEGORY_ORDER),
}


def _parse_category_expression(spec: str, expression: str) -> List[BenchmarkClass]:
    """Evaluate a ``token(±token)*`` category-set expression.

    Tokens are ``mem``/``comp``/``mix``/``all``; ``+`` is set union and
    ``-`` set exclusion, evaluated left to right (``all-mix`` ≡
    ``mem+comp``).  Returns the selected classes in canonical order;
    raises for unknown tokens, dangling operators, or an expression
    that selects nothing.
    """
    parts = re.split(r"([+-])", expression)
    tokens = [part.strip() for part in parts[::2]]
    operators = parts[1::2]
    if any(token not in _CATEGORY_TOKENS for token in tokens):
        raise _unknown(spec)
    selected = set(_CATEGORY_TOKENS[tokens[0]])
    for operator, token in zip(operators, tokens[1:]):
        if operator == "+":
            selected |= _CATEGORY_TOKENS[token]
        else:
            selected -= _CATEGORY_TOKENS[token]
    if not selected:
        raise WorkloadSpecError(
            f"{spec!r}: the category expression selects no benchmark classes"
        )
    return [category for category in _CATEGORY_ORDER if category in selected]


def _parse_perf(spec: str, rest: str) -> Tuple[str, Callable[[], BenchmarkSuite], str]:
    """Parse ``perf:<path>[,benchmarks=N][,seed=S][,digest=D]``.

    The path keeps its case (this branch runs before the registry
    lowercases anything) and must not contain commas.  Validation and
    digesting of the file(s) behind the path happen here — cheap parse
    + hash, never a fit — so a malformed sample file fails at the
    ``--suite`` flag / service 400 layer, and the canonical spec pins
    the source *content*, not just its name.
    """
    # Lazy import: repro.workloads.__init__ imports this registry, and
    # repro.ingest imports repro.workloads — importing at module scope
    # would be a cycle.
    from repro.ingest import IngestError
    from repro.ingest.workload import build_perf_suite, inspect_perf_path

    parts = [part.strip() for part in rest.split(",")]
    path = parts[0]
    if not path:
        raise WorkloadSpecError(
            f"{spec!r}: perf needs a path — "
            "perf:<samples.csv|samples.jsonl|bundle-dir>[,benchmarks=N][,seed=S]"
        )
    benchmarks: Optional[int] = None
    seed: Optional[int] = None
    digest: Optional[str] = None
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not sep or key not in ("benchmarks", "seed", "digest"):
            raise WorkloadSpecError(
                f"{spec!r}: unknown perf parameter {part!r}; "
                "valid parameters: benchmarks=N, seed=S"
            )
        if key == "digest":
            digest = value.lower()
            continue
        try:
            number = int(value)
        except ValueError:
            raise WorkloadSpecError(
                f"{spec!r}: perf parameter {key} must be an integer, got {value!r}"
            ) from None
        if key == "benchmarks":
            benchmarks = number
        else:
            seed = number
    if benchmarks is not None and benchmarks <= 0:
        raise WorkloadSpecError(f"{spec!r}: benchmarks must be positive, got {benchmarks}")
    if seed is not None and seed < 0:
        raise WorkloadSpecError(f"{spec!r}: seed must be non-negative, got {seed}")

    try:
        source = inspect_perf_path(path)
    except IngestError as error:
        raise WorkloadSpecError(f"{spec!r}: {error}") from None
    if digest is not None and digest != source.digest:
        raise WorkloadSpecError(
            f"{spec!r}: samples changed on disk — the spec pins content digest "
            f"{digest} but {path!r} now digests to {source.digest}"
        )
    if benchmarks is not None and benchmarks > source.num_cores:
        raise WorkloadSpecError(
            f"{spec!r}: benchmarks={benchmarks} out of range; "
            f"{path!r} has {source.num_cores} profiled core(s)"
        )
    canonical = f"perf:{path}"
    if benchmarks is not None:
        canonical += f",benchmarks={benchmarks}"
    if seed is not None:
        canonical += f",seed={seed}"
    canonical += f",digest={source.digest}"
    kind = "fitted bundle" if source.is_bundle else "PMU sample stream"
    count = benchmarks if benchmarks is not None else source.num_cores
    return (
        canonical,
        lambda: build_perf_suite(path, benchmarks, seed),
        f"{count} benchmark(s) fitted from the {kind} at {path} (digest {source.digest})",
    )


def _parse(spec: str) -> Tuple[str, Callable[[], BenchmarkSuite], str]:
    """(canonical spec, suite builder, description) or raise."""
    stripped = spec.strip()
    perf_family, perf_sep, perf_rest = stripped.partition(":")
    if perf_sep and perf_family.strip().lower() == "perf":
        # Before lowercasing: the perf payload is a filesystem path.
        return _parse_perf(stripped, perf_rest.strip())
    normalised = stripped.lower()
    if normalised in ("suite", DEFAULT_WORKLOAD):
        return (
            DEFAULT_WORKLOAD,
            spec_cpu2006_like_suite,
            "the full 29-benchmark SPEC CPU2006-like suite",
        )
    family, sep, rest = normalised.partition(":")
    if not sep:
        family, rest = normalised, ""
    if family == "suite":
        base, slash, modifier = rest.partition("/")
        if base != "spec29" or not slash or not modifier:
            raise _unknown(spec)
        if modifier.startswith("scaled@"):
            try:
                count = int(modifier[len("scaled@"):])
            except ValueError:
                raise _unknown(spec) from None
            if count <= 0:
                raise WorkloadSpecError(f"{spec!r}: the scaled@N count must be positive")
            if count >= 29:
                # Scaling to the full size (or beyond) IS the full suite.
                return _parse(DEFAULT_WORKLOAD)
            return (
                f"suite:spec29/scaled@{count}",
                lambda: small_suite(count),
                f"a curated {count}-benchmark spread of the SPEC CPU2006-like suite's behaviours",
            )
        categories = _parse_category_expression(spec, modifier)
        if len(categories) == len(_CATEGORY_ORDER):
            # Selecting every class IS the full suite.
            return _parse(DEFAULT_WORKLOAD)
        canonical_modifier = "+".join(category.value.lower() for category in categories)
        label = "/".join(category.value for category in categories)
        return (
            f"suite:spec29/{canonical_modifier}",
            lambda: _category_subset(categories),
            f"the {label}-class benchmarks of the SPEC CPU2006-like suite",
        )
    if family in ("random", "service"):
        return _parse_family(spec, family, rest)
    raise _unknown(spec)


# ---------------------------------------------------------------------------
# Public API (mirrors repro.predictors)
# ---------------------------------------------------------------------------


def canonical_workload_spec(spec: str) -> str:
    """Normalise and validate a workload spec string.

    ``"suite"`` is shorthand for ``"suite:spec29"``; parametric
    families fill in defaulted parameters (``"random"`` →
    ``"random:n=8,seed=0"``).  Raises :class:`WorkloadSpecError` (a
    ``ValueError``) listing the available specs for anything the
    registry does not know.
    """
    canonical, _, _ = _parse(spec)
    return canonical


def make_workload(spec: str = DEFAULT_WORKLOAD) -> WorkloadSource:
    """Construct a workload source by spec string."""
    canonical, builder, description = _parse(spec)
    return RegisteredWorkload(canonical, description, builder)


#: One row per registered family — (constructible exemplar spec,
#: grammar pattern, description).  The single source for listings and
#: unknown-spec errors; :func:`_parse` is the single parser.  Adding a
#: family means one row here plus one branch in :func:`_parse`.
_FAMILY_ROWS: Tuple[Tuple[str, str, str], ...] = (
    (
        "suite:spec29",
        "suite:spec29",
        "the full 29-benchmark SPEC CPU2006-like suite (default)",
    ),
    (
        "suite:spec29/scaled@8",
        "suite:spec29/scaled@N",
        "a curated N-benchmark spread of the suite's behaviours (N < 29)",
    ),
    (
        "suite:spec29/mem",
        "suite:spec29/{mem|comp|mix}",
        "the suite restricted to one MEM/COMP/MIX behaviour class",
    ),
    (
        "suite:spec29/mem+comp",
        "suite:spec29/<cats>±<cats>",
        "category-set algebra over mem/comp/mix/all: + unions, - excludes (all-mix = mem+comp)",
    ),
    (
        "perf:tests/data/perf_ingest_samples.csv",
        "perf:<path>[,benchmarks=N][,seed=S]",
        "benchmarks fitted from a PMU sample stream or ingest bundle at <path>",
    ),
    (
        "random:n=8,seed=0",
        "random:n=N,seed=S",
        "N parametric synthetic benchmarks drawn from the ReuseProfile space",
    ),
    (
        "service:n=8,seed=0",
        "service:n=N,seed=S",
        "N bursty, strongly-phased microservice-like benchmarks",
    ),
)


def available_workloads() -> List[str]:
    """Constructible exemplar specs, one per registered family."""
    return [exemplar for exemplar, _, _ in _FAMILY_ROWS]


def describe_workloads() -> List[Tuple[str, str]]:
    """(spec pattern, description) rows for every registered family."""
    return [(pattern, description) for _, pattern, description in _FAMILY_ROWS]


def _suite_digest(suite: BenchmarkSuite) -> str:
    """A short content digest of a suite (stable across processes)."""
    description = "\x1f".join(repr(spec) for spec in suite.specs)
    return hashlib.sha256(description.encode("utf-8")).hexdigest()[:12]


def workload_for(
    workload: Union[str, WorkloadSource, BenchmarkSuite, None],
    suite: Optional[BenchmarkSuite] = None,
) -> WorkloadSource:
    """Resolve anything workload-shaped into a :class:`WorkloadSource`.

    * ``None`` → the default workload (``suite:spec29``), or — when a
      bare ``suite`` object is supplied — that suite under a canonical
      spec if it matches a registered workload, else under a
      content-digest ``inline:<hash>`` spec (deterministic across
      processes, so engine cache keys and profile files still agree).
    * a spec string → :func:`make_workload`.
    * a :class:`WorkloadSource` → returned as-is.

    ``suite`` is the authoritative suite object when both are given
    (the engine's worker-reconstruction path ships the pickled suite
    next to the spec so workers never rebuild it from the registry).
    """
    if workload is None and suite is None:
        return make_workload(DEFAULT_WORKLOAD)
    if workload is None:
        full = spec_cpu2006_like_suite()
        if suite.specs == full.specs:
            return make_workload(DEFAULT_WORKLOAD)
        if 0 < len(suite) < 29 and suite.specs == small_suite(len(suite)).specs:
            return make_workload(f"suite:spec29/scaled@{len(suite)}")
        captured = suite
        return RegisteredWorkload(
            f"inline:{_suite_digest(suite)}",
            f"an inline suite of {len(suite)} benchmarks",
            lambda: captured,
        )
    if isinstance(workload, BenchmarkSuite):
        return workload_for(None, suite=workload)
    if isinstance(workload, str):
        source = make_workload(workload)
        if suite is not None and suite.specs != source.suite().specs:
            # A mismatched pair would store results computed from the
            # ad-hoc suite under the registered spec's cache identity,
            # poisoning any shared cache directory.
            raise WorkloadSpecError(
                f"the supplied suite does not match workload {source.spec!r}; "
                "pass the suite alone (it gets its own inline: spec) or "
                "drop it"
            )
    else:
        source = workload
    if suite is not None:
        # Trusted pair (engine recipe ships a WorkloadSource instance
        # whose builder returns this suite): keep the spec, serve the
        # shipped suite object.
        return RegisteredWorkload(source.spec, source.describe(), lambda: suite)
    return source
