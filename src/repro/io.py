"""Crash-safe JSON persistence shared by the on-disk caches.

Both the profile store and the engine's result cache persist artefacts
as JSON files in directories that parallel workers and concurrent
campaigns may share.  Two rules keep that safe:

* writes go to a unique temporary file first and are renamed into
  place (`os.replace` is atomic on POSIX), so readers never observe a
  partial file, and
* a file that fails to parse (e.g. a write interrupted by a crash) is
  treated as a cache miss rather than an error, and will simply be
  overwritten by the next write.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional


def atomic_write_json(path: Path, data: Any) -> None:
    """Serialise ``data`` to ``path`` via a unique tmp file + rename."""
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_json_tolerant(path: Path) -> Optional[Any]:
    """The parsed contents of ``path``, or ``None`` if absent/corrupt."""
    if not path.exists():
        return None
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except (json.JSONDecodeError, OSError):
        return None
