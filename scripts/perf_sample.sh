#!/usr/bin/env bash
# Capture a PMU sample stream in the shape `repro ingest` consumes.
#
# Wraps `perf stat -I` (interval mode, per-CPU, CSV output) and rewrites
# its stderr stream into the documented sample CSV —
#
#     core,timestamp,llc_loads,llc_misses,instructions
#
# one row per (core, sample window), which is exactly what
# `repro.ingest` / the `perf:` workload family expect (see
# src/repro/ingest/samples.py REQUIRED_COLUMNS).
#
# Usage:
#     scripts/perf_sample.sh [-i MS] [-o OUT.csv] [-C CPULIST] -- COMMAND...
#
#     -i MS       sampling interval in milliseconds (default 100)
#     -o OUT.csv  output CSV path (default samples.csv)
#     -C CPULIST  restrict sampling to these CPUs, e.g. 0,1 (default all)
#
# Examples:
#     # Pin two benchmarks to cores 0 and 1, sample both for their lifetime:
#     taskset -c 1 ./bench_b & scripts/perf_sample.sh -C 0,1 -o samples.csv \
#         -- taskset -c 0 ./bench_a
#
#     # Then fit the stream into a reusable bundle:
#     PYTHONPATH=src python -m repro.cli ingest samples.csv --out bundle/
#
# Sampling is system-wide per-CPU (`perf stat -a -A`): each CSV `core`
# column is a hardware CPU, so pin one benchmark per sampled core
# (taskset/cgroups) for a clean per-program series.  Windows where a
# counter was not counted (multiplexing) are dropped whole rather than
# emitted with holes.  Pair the CSV with a machine descriptor JSON
# (cache geometry in lines + clock in GHz — see MachineDescriptor in
# src/repro/ingest/samples.py); `repro ingest` looks for
# <stem>.machine.json, then a shared machine.json, beside the CSV.

set -euo pipefail

INTERVAL_MS=100
OUT=samples.csv
CPULIST=""
EVENTS="LLC-loads,LLC-load-misses,instructions"

usage() {
    sed -n '2,36p' "$0" | sed 's/^# \{0,1\}//'
    exit "${1:-0}"
}

while getopts "i:o:C:h" opt; do
    case "$opt" in
        i) INTERVAL_MS="$OPTARG" ;;
        o) OUT="$OPTARG" ;;
        C) CPULIST="$OPTARG" ;;
        h) usage 0 ;;
        *) usage 64 ;;
    esac
done
shift $((OPTIND - 1))
[ "${1:-}" = "--" ] && shift
[ $# -ge 1 ] || { echo "error: no command to sample (see -h)" >&2; exit 64; }

command -v perf >/dev/null 2>&1 || {
    echo "error: perf not found; install linux-tools for this kernel" >&2
    exit 69
}

PERF_OPTS=(-x, -I "$INTERVAL_MS" -a -A -e "$EVENTS")
[ -n "$CPULIST" ] && PERF_OPTS+=(-C "$CPULIST")

# perf stat writes counter lines to stderr; route them through awk and
# leave the sampled command's own stdout/stderr alone.
perf stat "${PERF_OPTS[@]}" -- "$@" 2> >(
    awk -F, -v OFS=, '
        BEGIN { print "core,timestamp,llc_loads,llc_misses,instructions" }
        /^#/ { next }
        NF >= 5 {
            ts = $1; cpu = $2; val = $3; ev = $5
            gsub(/^[ \t]+|[ \t]+$/, "", ts)
            gsub(/^[ \t]+|[ \t]+$/, "", cpu)
            gsub(/^[ \t]+|[ \t]+$/, "", val)
            gsub(/^[ \t]+|[ \t]+$/, "", ev)
            sub(/^CPU/, "", cpu)
            sub(/:[a-zA-Z]+$/, "", ev)   # strip :u/:k modifiers
            if (cpu !~ /^[0-9]+$/) next
            # "<not counted>" / "<not supported>" poison the whole
            # window for that core: drop it instead of emitting holes.
            key = ts SUBSEP cpu
            if (val !~ /^[0-9]+$/) { bad[key] = 1 }
            else if (ev == "LLC-loads")        loads[key] = val
            else if (ev == "LLC-load-misses")  miss[key] = val
            else if (ev == "instructions")     insn[key] = val
            if (!(key in bad) && (key in loads) && (key in miss) && (key in insn)) {
                print cpu, ts, loads[key], miss[key], insn[key]
                delete loads[key]; delete miss[key]; delete insn[key]
            }
        }
    ' > "$OUT"
)

echo "wrote $OUT" >&2
