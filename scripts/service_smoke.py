"""CI smoke test: a real ``repro serve`` process against the real CLI.

Starts the service as a subprocess on an ephemeral port (discovered
from its announce line), POSTs predictions for two different predictor
specs, and **diffs them against `repro predict`**: the served payload is
rebuilt into a :class:`MixPrediction` and its ``describe()`` rendering
must equal, line for line, what the batch CLI prints for the same spec
strings.  Then hits ``/healthz`` and ``/stats`` (asserting the served
counter moved) and shuts the server down cleanly via ``POST /shutdown``.

Everything is stdlib: ``subprocess`` + ``urllib``.  Run from the repo
root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

WORKLOAD = "suite:spec29/scaled@5"
INSTRUCTIONS = "20000"
MIX = ["gamess", "hmmer"]
PREDICTORS = ["mppm:foa", "baseline:one-shot"]

SERVE_ARGS = [
    "serve",
    "--port",
    "0",
    "--suite",
    WORKLOAD,
    "--instructions",
    INSTRUCTIONS,
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _http(method: str, url: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def _cli_predict(predictor: str) -> str:
    """What `repro predict` prints for the same spec strings."""
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "predict",
            "--suite",
            WORKLOAD,
            "--instructions",
            INSTRUCTIONS,
            "--model",
            predictor,
            *MIX,
        ],
        env=_env(),
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
    )
    return result.stdout.strip()


def main() -> int:
    sys.path.insert(0, SRC)
    from repro.core.result import MixPrediction
    from repro.service.runner import ANNOUNCE_PREFIX

    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *SERVE_ARGS],
        env=_env(),
        stdout=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
    )
    try:
        assert server.stdout is not None
        line = server.stdout.readline().strip()
        assert line.startswith(ANNOUNCE_PREFIX), f"unexpected announce line: {line!r}"
        base = line[len(ANNOUNCE_PREFIX) :]
        print(f"smoke: server up at {base}")

        health = _http("GET", f"{base}/healthz")
        assert health["status"] == "ok", health
        assert health["preloaded_profiles"] > 0, health

        for predictor in PREDICTORS:
            served = _http(
                "POST", f"{base}/predict", {"mix": MIX, "predictor": predictor}
            )
            rebuilt = MixPrediction.from_dict(served["prediction"]).describe()
            expected = _cli_predict(predictor)
            assert rebuilt == expected, (
                f"served prediction diverges from `repro predict` for {predictor}:\n"
                f"--- served ---\n{rebuilt}\n--- repro predict ---\n{expected}"
            )
            print(f"smoke: {predictor} matches `repro predict` bit for bit")

        stats = _http("GET", f"{base}/stats")
        assert stats["predictions"]["served"] >= len(PREDICTORS), stats
        assert stats["requests"]["total"] >= len(PREDICTORS) + 1, stats
        print(
            f"smoke: stats ok (served {stats['predictions']['served']}, "
            f"computed {stats['predictions']['computed']}, "
            f"cache hits {stats['engine_cache']['hits']})"
        )

        _http("POST", f"{base}/shutdown")
        code = server.wait(timeout=30)
        assert code == 0, f"server exited with {code}"
        print("smoke: clean shutdown")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
