#!/usr/bin/env python
"""Regenerate the measured numbers quoted in EXPERIMENTS.md.

Runs every experiment harness at (slightly reduced) benchmark-suite
sizes and prints the rendered tables/series plus a compact summary
block that EXPERIMENTS.md quotes.  The full-size runs live in
``benchmarks/``; this script exists so the documentation numbers can be
refreshed with one command:

    python scripts/generate_experiments_report.py > experiments_report.txt
"""

from __future__ import annotations

import time

from repro.experiments import ExperimentSetup
from repro.experiments.ablations import (
    contention_model_ablation,
    iteration_ablation,
    smoothing_ablation,
    update_rule_ablation,
)
from repro.experiments.accuracy import accuracy_experiment
from repro.experiments.agreement import agreement_experiment
from repro.experiments.configurations import configuration_tables
from repro.experiments.ranking import ranking_experiment
from repro.experiments.speed import speed_experiment
from repro.experiments.stress import benchmark_sensitivity, stress_experiment, worst_mix_case_study
from repro.experiments.variability import variability_experiment
from repro.experiments.workload_space import workload_space_report


def main() -> None:
    start = time.time()
    setup = ExperimentSetup()

    def section(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    section("Tables 1 and 2")
    print(configuration_tables(setup).render())

    section("Workload-space explosion (Section 1)")
    print(workload_space_report(setup).render())

    section("Figure 3 - variability")
    variability = variability_experiment(setup, max_mixes=60, source="simulation")
    print(variability.render())

    section("Figures 4 and 5 - accuracy")
    accuracy = accuracy_experiment(
        setup,
        core_counts=(2, 4, 8),
        mixes_per_core_count=30,
        include_16_core=True,
        mixes_16_core=8,
    )
    print(accuracy.render())

    section("Figure 6 - worst-mix case study")
    print(worst_mix_case_study(setup).render())

    section("Section 4.3 - speed")
    print(speed_experiment(setup, num_cores=8, num_mixes=6).render())

    section("Figure 7 - ranking (random / category)")
    ranking_random = ranking_experiment(
        setup, policy="random", num_trials=10, mixes_per_trial=10,
        reference_mixes=30, mppm_mixes=150,
    )
    print(ranking_random.render())
    ranking_category = ranking_experiment(
        setup, policy="category", num_trials=10, mixes_per_trial=10,
        reference_mixes=30, mppm_mixes=150,
    )
    print(ranking_category.render())

    section("Figure 8 - pairwise agreement")
    agreement = agreement_experiment(
        setup, num_trials=10, mixes_per_trial=10, reference_mixes=30, mppm_mixes=150
    )
    print(agreement.render())

    section("Figure 9 / Section 6 - stress workloads")
    stress = stress_experiment(setup, num_mixes=60, worst_k=10)
    print(stress.render())
    print()
    print(benchmark_sensitivity(stress.evaluations).render())

    section("Ablations")
    print(contention_model_ablation(setup, num_mixes=20).render())
    print()
    print(smoothing_ablation(setup, smoothing_factors=(0.0, 0.25, 0.5, 0.75), num_mixes=20).render())
    print()
    print(update_rule_ablation(setup, num_mixes=20).render())
    print()
    print(iteration_ablation(setup, num_mixes=20).render())

    print()
    print(f"(report generated in {time.time() - start:.0f} seconds)")


if __name__ == "__main__":
    main()
