"""Regenerate the committed PMU sample fixture under ``tests/data/``.

The fixture is a synthesized perf-style sample stream (CSV + machine
descriptor JSON) emitted from three known spec29 benchmarks via
:mod:`repro.ingest.synth`.  Tests and the CI smoke use it to exercise
``repro ingest`` and the ``perf:`` workload family without hardware.

Run from the repository root::

    PYTHONPATH=src python scripts/make_perf_fixture.py
"""

from __future__ import annotations

from pathlib import Path

from repro.config import machine_with_llc, scaled
from repro.ingest import write_samples
from repro.workloads import workload_for

BENCHMARKS = ("gamess", "lbm", "povray")
OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "perf_ingest_samples.csv"


def main() -> None:
    suite = workload_for("suite:spec29").suite()
    specs = [suite[name] for name in BENCHMARKS]
    machine = scaled(machine_with_llc(1, num_cores=1), 16)
    csv_path, machine_path = write_samples(
        specs,
        machine,
        OUT,
        num_instructions=60_000,
        interval_instructions=1_500,
        seed=0,
    )
    print(f"wrote {csv_path}")
    print(f"wrote {machine_path}")


if __name__ == "__main__":
    main()
