#!/usr/bin/env python
"""Quickstart: predict multi-core performance for one workload mix with MPPM.

This example mirrors the paper's Figure 6 case study: the 4-program
workload consisting of two copies of ``gamess`` together with ``hmmer``
and ``soplex`` — the worst-STP mix of the paper — is evaluated with
MPPM, and (optionally, because it is slower) cross-checked against the
detailed reference simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExperimentSetup, WorkloadMix


def main() -> None:
    setup = ExperimentSetup()

    # The workload mix: benchmark names from the SPEC CPU2006-like suite,
    # one per core; the same program may appear several times.
    mix = WorkloadMix(programs=("gamess", "gamess", "hmmer", "soplex"))
    machine = setup.machine(num_cores=mix.num_programs, llc_config=1)

    print("Machine under study:")
    print(machine.describe())
    print()

    # MPPM prediction (the one-time single-core profiling of the four
    # benchmarks happens transparently inside the setup).
    prediction = setup.predict(mix, machine)
    print(prediction.describe())
    print()

    # Cross-check against the detailed reference simulation of the same mix.
    measurement = setup.simulate(mix, machine)
    print("Detailed reference simulation of the same mix:")
    for program in measurement.programs:
        print(
            f"  core {program.core}: {program.name:<12s} "
            f"CPI_MC {program.cpi:6.3f} (slowdown {program.slowdown:4.2f}x)"
        )
    print(
        f"  STP {measurement.system_throughput:.3f}, "
        f"ANTT {measurement.average_normalized_turnaround_time:.3f}"
    )
    print()

    stp_error = abs(prediction.system_throughput - measurement.system_throughput)
    stp_error /= measurement.system_throughput
    print(f"MPPM STP prediction error versus detailed simulation: {stp_error:.1%}")


if __name__ == "__main__":
    main()
