#!/usr/bin/env python
"""Variability study: how many workload mixes does a conclusion need?

The paper's Figure 3 shows that the 95% confidence interval on mean STP
and ANTT over randomly selected 4-program workloads is wide when only a
dozen mixes are used — wide enough to swallow the differences between
realistic design alternatives.  This example reproduces that curve
using MPPM (so it runs in seconds) and prints the confidence-interval
width as a function of the number of mixes.

Run with::

    python examples/variability_study.py [--max-mixes N]
"""

from __future__ import annotations

import argparse

from repro import ExperimentSetup
from repro.experiments.variability import variability_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-mixes", type=int, default=150, help="largest number of mixes to consider"
    )
    parser.add_argument("--cores", type=int, default=4, help="programs per mix")
    parser.add_argument("--seed", type=int, default=13, help="mix-sampling seed")
    args = parser.parse_args()

    setup = ExperimentSetup()
    result = variability_experiment(
        setup,
        num_cores=args.cores,
        max_mixes=args.max_mixes,
        source="mppm",
        seed=args.seed,
    )
    print(result.render())

    few = result.points[0]
    many = result.points[-1]
    print(
        f"\nWith {few.num_mixes} mixes the STP confidence interval is "
        f"+/-{few.stp_ci_pct:.1f}% of the mean; with {many.num_mixes} mixes it shrinks to "
        f"+/-{many.stp_ci_pct:.1f}% (the paper reports ~10% at 10 mixes and 2.6% at 150)."
    )


if __name__ == "__main__":
    main()
