#!/usr/bin/env python
"""Design-space study: rank the six LLC configurations of Table 2 with MPPM.

This is the workflow the paper advocates in Section 5: instead of
detailed-simulating a dozen randomly chosen workload mixes (current
practice), evaluate a large number of mixes analytically with MPPM and
rank the design alternatives from those results — and compare that
ranking against what a small random sample would have concluded.

Run with::

    python examples/design_space_ranking.py [--mixes N] [--trial-mixes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ExperimentSetup
from repro.experiments.reporting import format_table
from repro.metrics import spearman_rank_correlation
from repro.workloads import sample_mixes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mixes", type=int, default=200, help="number of 4-program mixes MPPM evaluates"
    )
    parser.add_argument(
        "--trial-mixes",
        type=int,
        default=12,
        help="size of the small 'current practice' sample used for comparison",
    )
    parser.add_argument("--seed", type=int, default=17, help="mix-sampling seed")
    args = parser.parse_args()

    setup = ExperimentSetup()
    machines = setup.design_space(num_cores=4)
    mixes = sample_mixes(setup.benchmark_names, 4, args.mixes, seed=args.seed)
    small_sample = mixes[: args.trial_mixes]

    rows = []
    mppm_stp, small_stp = [], []
    for machine in machines:
        model = setup.mppm(machine)
        profiles = setup.profiles(machine)
        predictions = [model.predict_mix(mix, profiles) for mix in mixes]
        stp_all = float(np.mean([p.system_throughput for p in predictions]))
        antt_all = float(np.mean([p.average_normalized_turnaround_time for p in predictions]))
        stp_small = float(
            np.mean([p.system_throughput for p in predictions[: args.trial_mixes]])
        )
        mppm_stp.append(stp_all)
        small_stp.append(stp_small)
        rows.append(
            {
                "LLC": machine.name,
                "avg_STP_all_mixes": stp_all,
                "avg_ANTT_all_mixes": antt_all,
                f"avg_STP_first_{args.trial_mixes}_mixes": stp_small,
            }
        )

    print(
        format_table(
            rows,
            title=(
                f"MPPM design-space ranking over {args.mixes} four-program mixes "
                "(Table 2 LLC configurations):"
            ),
        )
    )
    best = machines[int(np.argmax(mppm_stp))]
    print(f"\nBest configuration by STP over the full sample: {best.name}")
    correlation = spearman_rank_correlation(mppm_stp, small_stp)
    print(
        f"Rank correlation between the full-sample ranking and a {args.trial_mixes}-mix "
        f"sample: {correlation:.2f} (1.00 means the small sample got the ranking right)"
    )


if __name__ == "__main__":
    main()
