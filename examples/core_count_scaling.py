#!/usr/bin/env python
"""Core-count scaling study: how does shared-LLC contention grow with cores?

The paper evaluates MPPM on 2, 4, 8 and 16 cores (§4.2).  Because the
single-core profiles are independent of the number of cores, MPPM can
sweep the core count at essentially no extra cost: the same profiles
feed predictions for every machine width.  This example reports mean
STP, mean ANTT and the slowdown of the most sharing-sensitive benchmark
(``gamess``) as the core count grows, for two LLC configurations.

Run with::

    python examples/core_count_scaling.py [--mixes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ExperimentSetup
from repro.experiments.reporting import format_table
from repro.workloads import WorkloadMix, sample_mixes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", type=int, default=40, help="mixes per core count")
    parser.add_argument("--seed", type=int, default=37, help="mix-sampling seed")
    args = parser.parse_args()

    setup = ExperimentSetup()
    rows = []
    for llc_config in (1, 4):
        for num_cores in (2, 4, 8, 16):
            machine = setup.machine(num_cores=num_cores, llc_config=llc_config)
            mixes = sample_mixes(
                setup.benchmark_names, num_cores, args.mixes, seed=args.seed + num_cores
            )
            predictions = [setup.predict(mix, machine) for mix in mixes]
            gamess_mix = WorkloadMix(
                programs=("gamess",) + tuple(setup.benchmark_names[:1]) * (num_cores - 1)
            )
            gamess_prediction = setup.predict(gamess_mix, machine)
            rows.append(
                {
                    "LLC": f"config #{llc_config}",
                    "cores": num_cores,
                    "mean_STP": float(np.mean([p.system_throughput for p in predictions])),
                    "mean_STP_per_core": float(
                        np.mean([p.system_throughput / num_cores for p in predictions])
                    ),
                    "mean_ANTT": float(
                        np.mean([p.average_normalized_turnaround_time for p in predictions])
                    ),
                    "gamess_slowdown": gamess_prediction.program("gamess").slowdown,
                }
            )

    print(
        format_table(
            rows,
            title=(
                f"Core-count scaling predicted by MPPM over {args.mixes} random mixes per point "
                "(plus a gamess-centred mix for the per-benchmark view):"
            ),
        )
    )
    print(
        "\nExpected shape: per-core throughput and gamess's slowdown both degrade as more"
        " cores share the LLC, and the larger configuration #4 degrades more slowly."
    )


if __name__ == "__main__":
    main()
