#!/usr/bin/env python
"""Stress-workload hunt: find the mixes that hurt the multi-core design most.

Section 6 of the paper uses MPPM to identify the multi-program
workloads with the worst system throughput — mixes dominated by
sharing-sensitive programs such as ``gamess`` — so that architects can
analyse and fix the underlying conflict behaviour.  This example scans
a sample of 4-program mixes with MPPM only (no detailed simulation),
reports the bottom of the STP distribution, and shows which benchmarks
appear most often in the worst mixes.

Run with::

    python examples/stress_workloads.py [--mixes N] [--worst K]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro import ExperimentSetup
from repro.experiments.reporting import format_table
from repro.workloads import sample_mixes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", type=int, default=300, help="number of mixes to scan")
    parser.add_argument("--worst", type=int, default=10, help="how many worst mixes to report")
    parser.add_argument("--cores", type=int, default=4, help="number of cores / programs per mix")
    parser.add_argument("--llc-config", type=int, default=1, help="Table 2 LLC configuration")
    parser.add_argument("--seed", type=int, default=29, help="mix-sampling seed")
    args = parser.parse_args()

    setup = ExperimentSetup()
    machine = setup.machine(num_cores=args.cores, llc_config=args.llc_config)
    profiles = setup.profiles(machine)
    model = setup.mppm(machine)

    mixes = sample_mixes(setup.benchmark_names, args.cores, args.mixes, seed=args.seed)
    predictions = [(mix, model.predict_mix(mix, profiles)) for mix in mixes]
    predictions.sort(key=lambda pair: pair[1].system_throughput)

    rows = []
    for mix, prediction in predictions[: args.worst]:
        worst_program = max(prediction.programs, key=lambda program: program.slowdown)
        rows.append(
            {
                "mix": mix.label(),
                "STP": prediction.system_throughput,
                "ANTT": prediction.average_normalized_turnaround_time,
                "worst_program": worst_program.name,
                "worst_slowdown": worst_program.slowdown,
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"The {args.worst} worst mixes (by MPPM STP) out of {args.mixes} scanned on "
                f"{machine.name}:"
            ),
        )
    )

    appearances = Counter(
        name for mix, _ in predictions[: args.worst] for name in mix.programs
    )
    print("\nBenchmarks appearing most often in the worst mixes:")
    for name, count in appearances.most_common(5):
        print(f"  {name:<12s} {count} appearances")
    print(
        "\n(The paper finds gamess to be the most sharing-sensitive benchmark: "
        "it dominates the worst-case mixes with a slowdown of about 2.2x.)"
    )


if __name__ == "__main__":
    main()
